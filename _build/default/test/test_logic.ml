(* Tests for the logic front end: expression algebra, equation parsing,
   and functional correctness + structural quality of the technology
   mapper. *)

module E = Logic.Expr
module Q = Logic.Eqn
module M = Logic.Mapper
module C = Netlist.Circuit

let v = E.var

let expr = Alcotest.testable E.pp E.equal

(* --- Expr --- *)

let test_smart_constructors () =
  Alcotest.check expr "and flattens"
    (E.and_ [ v "a"; v "b"; v "c" ])
    (E.and_ [ E.and_ [ v "a"; v "b" ]; v "c" ]);
  Alcotest.check expr "or drops false"
    (E.or_ [ v "a"; v "b" ])
    (E.or_ [ v "a"; E.const false; v "b" ]);
  Alcotest.check expr "and absorbs false" (E.const false)
    (E.and_ [ v "a"; E.const false ]);
  Alcotest.check expr "duplicates collapse" (v "a") (E.and_ [ v "a"; v "a" ]);
  Alcotest.check expr "complement annihilates" (E.const false)
    (E.and_ [ v "a"; E.not_ (v "a") ]);
  Alcotest.check expr "double negation" (v "a") (E.not_ (E.not_ (v "a")));
  Alcotest.check expr "xor self" (E.const false) (E.xor (v "a") (v "a"));
  Alcotest.check expr "xor with 1" (E.not_ (v "a")) (E.xor (v "a") (E.const true));
  Alcotest.check expr "commutative canonical"
    (E.and_ [ v "a"; v "b" ])
    (E.and_ [ v "b"; v "a" ])

let test_variables () =
  let e = E.or_ [ E.and_ [ v "b"; v "a" ]; E.xor (v "c") (v "a") ] in
  Alcotest.(check (list string)) "sorted distinct" [ "a"; "b"; "c" ]
    (E.variables e)

let test_eval () =
  let e = E.or_ [ E.and_ [ v "a"; v "b" ]; E.not_ (v "c") ] in
  let env values name = List.assoc name values in
  Alcotest.(check bool) "11 1" true
    (E.eval (env [ ("a", true); ("b", true); ("c", true) ]) e);
  Alcotest.(check bool) "00 1" true
    (E.eval (env [ ("a", false); ("b", false); ("c", false) ]) e);
  Alcotest.(check bool) "01 1" false
    (E.eval (env [ ("a", false); ("b", true); ("c", true) ]) e)

(* random expressions over 4 variables *)
let names = [| "a"; "b"; "c"; "d" |]

let expr_gen =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         if n <= 0 then
           oneof
             [
               map (fun i -> v names.(i)) (int_bound 3);
               map E.const bool;
             ]
         else
           frequency
             [
               (3, map (fun i -> v names.(i)) (int_bound 3));
               (2, map E.not_ (self (n - 1)));
               ( 3,
                 int_range 2 4 >>= fun k ->
                 map E.and_ (list_repeat k (self (n / k))) );
               ( 3,
                 int_range 2 4 >>= fun k ->
                 map E.or_ (list_repeat k (self (n / k))) );
               (2, map2 E.xor (self (n / 2)) (self (n / 2)));
             ])

let arbitrary_expr = QCheck.make ~print:E.to_string expr_gen

let all_envs =
  List.init 16 (fun bits name ->
      let idx = ref 0 in
      Array.iteri (fun i n -> if n = name then idx := i) names;
      bits land (1 lsl !idx) <> 0)

let prop_parse_print_roundtrip =
  QCheck.Test.make ~name:"to_string/parse round-trip" ~count:300 arbitrary_expr
    (fun e ->
      let text = "y = " ^ E.to_string e ^ "\noutput y\n" in
      let parsed = Q.of_string text in
      match parsed.Q.equations with
      | [ ("y", e') ] -> List.for_all (fun env -> E.eval env e = E.eval env e') all_envs
      | _ -> false)

let prop_constructors_preserve_semantics =
  QCheck.Test.make ~name:"smart constructors preserve the function" ~count:300
    arbitrary_expr (fun e ->
      (* Rebuild through the constructors and compare truth tables. *)
      let rec rebuild = function
        | E.Var n -> v n
        | E.Const b -> E.const b
        | E.Not x -> E.not_ (rebuild x)
        | E.And xs -> E.and_ (List.map rebuild xs)
        | E.Or xs -> E.or_ (List.map rebuild xs)
        | E.Xor (a, b) -> E.xor (rebuild a) (rebuild b)
      in
      let e' = rebuild e in
      List.for_all (fun env -> E.eval env e = E.eval env e') all_envs)

(* --- Eqn --- *)

let test_eqn_full_adder () =
  let text =
    "# full adder\n\
     input a b cin\n\
     sum  = a ^ b ^ cin\n\
     cout = (a & b) | (cin & (a ^ b))\n\
     output sum cout\n"
  in
  let q = Q.of_string text in
  Alcotest.(check (list string)) "inputs" [ "a"; "b"; "cin" ] q.Q.inputs;
  Alcotest.(check (list string)) "outputs" [ "sum"; "cout" ] q.Q.outputs;
  Alcotest.(check int) "two equations" 2 (List.length q.Q.equations)

let test_eqn_inferred_inputs_and_outputs () =
  let q = Q.of_string "t = a & b\ny = t | c\n" in
  Alcotest.(check (list string)) "inferred inputs" [ "a"; "b"; "c" ] q.Q.inputs;
  (* t is consumed by y, so only y defaults to an output. *)
  Alcotest.(check (list string)) "default outputs" [ "y" ] q.Q.outputs

let test_eqn_precedence () =
  let q = Q.of_string "y = a | b & c ^ d\noutput y\n" in
  match q.Q.equations with
  | [ (_, e) ] ->
      Alcotest.check expr "| < ^ < &"
        (E.or_ [ v "a"; E.xor (E.and_ [ v "b"; v "c" ]) (v "d") ])
        e
  | _ -> Alcotest.fail "one equation expected"

let test_eqn_errors () =
  let fails ?(frag = "") text =
    try
      ignore (Q.of_string text);
      Alcotest.failf "expected parse error for %S" text
    with Q.Parse_error { message; _ } ->
      if frag <> "" then
        Alcotest.(check bool)
          (Printf.sprintf "%S mentions %S" message frag)
          true
          (let n = String.length message and m = String.length frag in
           let rec go i = i + m <= n && (String.sub message i m = frag || go (i + 1)) in
           go 0)
  in
  fails ~frag:"defined twice" "y = a\ny = b\noutput y\n";
  fails ~frag:"used before" "y = t\nt = a\noutput y t\n";
  fails ~frag:"undefined name" "input a\ny = q\noutput y\n";
  fails ~frag:"unexpected character" "y = a $ b\n";
  fails ~frag:"closing parenthesis" "y = (a & b\n";
  fails ~frag:"trailing" "y = a b\n";
  fails ~frag:"operand" "y = a &\n";
  fails ~frag:"never defined" "y = a\noutput z\n";
  fails ~frag:"declared as an input" "input a\na = a\noutput a\n"

let test_eqn_roundtrip () =
  let text = "input a b c\nt = a & b\ny = t ^ ~c\noutput y\n" in
  let q = Q.of_string text in
  let q2 = Q.of_string (Q.to_string q) in
  Alcotest.(check (list string)) "inputs" q.Q.inputs q2.Q.inputs;
  Alcotest.(check int) "equations" (List.length q.Q.equations)
    (List.length q2.Q.equations)

(* --- Mapper --- *)

let map_text text = M.map (Q.of_string text)

let check_equivalent text =
  let q = Q.of_string text in
  let circuit = M.map q in
  (* Compare output functions symbolically against the expressions with
     intermediate names substituted. *)
  let m = Bdd.manager () in
  let var_index name =
    let rec go i = function
      | [] -> Alcotest.failf "input %s missing" name
      | x :: _ when x = name -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 q.Q.inputs
  in
  let resolved = Hashtbl.create 8 in
  List.iter
    (fun (lhs, rhs) ->
      let rec subst e =
        match (e : E.t) with
        | E.Var x -> (
            match Hashtbl.find_opt resolved x with Some r -> r | None -> e)
        | E.Const _ -> e
        | E.Not x -> E.not_ (subst x)
        | E.And xs -> E.and_ (List.map subst xs)
        | E.Or xs -> E.or_ (List.map subst xs)
        | E.Xor (a, b) -> E.xor (subst a) (subst b)
      in
      Hashtbl.replace resolved lhs (subst rhs))
    q.Q.equations;
  let bdds = Netlist.Eval.output_bdds m circuit in
  List.iteri
    (fun i out ->
      let expected =
        E.to_bdd m ~var_index (Hashtbl.find resolved out)
      in
      let _, actual = List.nth bdds i in
      Alcotest.(check bool)
        (Printf.sprintf "output %s equivalent" out)
        true (Bdd.equal expected actual))
    q.Q.outputs;
  circuit

let test_map_simple_forms () =
  ignore (check_equivalent "y = a & b\noutput y\n");
  ignore (check_equivalent "y = ~(a | b | c)\noutput y\n");
  ignore (check_equivalent "y = a ^ b\noutput y\n");
  ignore (check_equivalent "y = ~a & ~b\noutput y\n");
  ignore (check_equivalent "y = a & b & c & d & e & f\noutput y\n")

let test_map_full_adder () =
  let c =
    check_equivalent
      "input a b cin\nsum = a ^ b ^ cin\ncout = (a & b) | (cin & (a ^ b))\noutput sum cout\n"
  in
  Alcotest.(check bool) "named nets survive" true
    (C.net_of_name c "sum" <> None && C.net_of_name c "cout" <> None)

let test_map_aoi_match () =
  (* ~((a&b) | c) is exactly one aoi21. *)
  let c = map_text "y = ~((a & b) | c)\noutput y\n" in
  Alcotest.(check (list (pair string int))) "single complex gate"
    [ ("aoi21", 1) ] (C.stats c);
  (* The positive polarity costs one more inverter. *)
  let c2 = map_text "y = (a & b) | c\noutput y\n" in
  Alcotest.(check (list (pair string int))) "aoi21 + inv"
    [ ("aoi21", 1); ("inv", 1) ] (C.stats c2);
  ignore (check_equivalent "y = ~((a & b) | c)\noutput y\n");
  ignore (check_equivalent "y = (a & b) | (c & d) | e\noutput y\n")

let test_map_oai_match () =
  let c = map_text "y = ~((a | b) & c)\noutput y\n" in
  Alcotest.(check (list (pair string int))) "single oai21" [ ("oai21", 1) ]
    (C.stats c);
  ignore (check_equivalent "y = ~((a | b) & (c | d) & e)\noutput y\n")

let test_map_demorgan_avoids_inverters () =
  (* ~a & ~b = nor2(a,b): no inverters at all. *)
  let c = map_text "y = ~a & ~b\noutput y\n" in
  Alcotest.(check (list (pair string int))) "single nor" [ ("nor2", 1) ]
    (C.stats c)

let test_map_shares_subexpressions () =
  (* a^b is used twice but built once: a full adder has 8 xor-nands
     shared, not 12. *)
  let c =
    map_text
      "input a b cin\nsum = (a ^ b) ^ cin\ncout = (a & b) | (cin & (a ^ b))\noutput sum cout\n"
  in
  let nand2 = try List.assoc "nand2" (C.stats c) with Not_found -> 0 in
  Alcotest.(check bool)
    (Printf.sprintf "xor pair shared (%d nand2)" nand2)
    true (nand2 <= 9)

let test_map_shares_inverters () =
  (* Both equations need the positive literal ~a; the inverter realizing
     it must be built once. The output polarities need no inverter (the
     final NANDs are absorbed by the outer negations). *)
  let c = map_text "y = ~(~a & b)\nz = ~(~a & c)\noutput y z\n" in
  Alcotest.(check (list (pair string int))) "one shared inverter"
    [ ("inv", 1); ("nand2", 2) ]
    (C.stats c)

let test_map_output_is_input () =
  let c = map_text "input a b\ny = a\nz = a & b\noutput y z\n" in
  Alcotest.(check bool) "input net is the output" true
    (List.mem
       (Option.get (C.net_of_name c "a"))
       (C.primary_outputs c))

let test_map_constant_rejected () =
  Alcotest.(check bool) "constant output rejected" true
    (try
       ignore (map_text "y = a & ~a\noutput y\n");
       false
     with M.Unmappable _ -> true)

let prop_mapper_equivalence =
  QCheck.Test.make ~name:"mapped circuit computes the expression" ~count:200
    arbitrary_expr (fun e ->
      match e with
      | E.Const _ -> true (* no tie cells: skip *)
      | _ ->
          let inputs = Array.to_list names in
          let circuit =
            M.map_bindings ~name:"prop" ~inputs
              ~equations:[ ("y", e) ]
              ~outputs:[ "y" ]
          in
          List.for_all
            (fun env ->
              let inputs_fn net = env (C.net_name circuit net) in
              match Netlist.Eval.outputs circuit ~inputs:inputs_fn with
              | [ y ] -> y = E.eval env e
              | _ -> false)
            all_envs)

let prop_mapper_reorderable =
  QCheck.Test.make ~name:"mapped circuits optimize cleanly" ~count:30
    arbitrary_expr (fun e ->
      match e with
      | E.Const _ -> true
      | _ ->
          let circuit =
            M.map_bindings ~name:"prop" ~inputs:(Array.to_list names)
              ~equations:[ ("y", e) ]
              ~outputs:[ "y" ]
          in
          let pt = Power.Model.table Cell.Process.default in
          let dt = Delay.Elmore.table Cell.Process.default in
          let inputs _ = Stoch.Signal_stats.make ~prob:0.4 ~density:1e5 in
          let r = Reorder.Optimizer.optimize pt ~delay:dt circuit ~inputs in
          r.Reorder.Optimizer.power_after
          <= r.Reorder.Optimizer.power_before +. 1e-18)


(* Fuzzing: mutated equation text must never crash the front end. *)
let prop_eqn_robust =
  let base = "input a b cin\nsum = a ^ b ^ cin\ncout = (a & b) | (cin & (a ^ b))\noutput sum cout\n" in
  QCheck.Test.make ~name:"eqn parser never crashes on mutated input" ~count:300
    QCheck.(pair (int_range 0 (String.length base - 1)) (int_range 0 255))
    (fun (pos, byte) ->
      let mutated = Bytes.of_string base in
      Bytes.set mutated pos (Char.chr byte);
      match Q.of_string (Bytes.to_string mutated) with
      | _ -> true
      | exception Q.Parse_error _ -> true)

let () =
  Alcotest.run "logic"
    [
      ( "expr",
        [
          Alcotest.test_case "smart constructors" `Quick test_smart_constructors;
          Alcotest.test_case "variables" `Quick test_variables;
          Alcotest.test_case "eval" `Quick test_eval;
          QCheck_alcotest.to_alcotest prop_parse_print_roundtrip;
          QCheck_alcotest.to_alcotest prop_constructors_preserve_semantics;
        ] );
      ( "eqn",
        [
          Alcotest.test_case "full adder" `Quick test_eqn_full_adder;
          Alcotest.test_case "inferred inputs/outputs" `Quick
            test_eqn_inferred_inputs_and_outputs;
          Alcotest.test_case "precedence" `Quick test_eqn_precedence;
          Alcotest.test_case "errors" `Quick test_eqn_errors;
          Alcotest.test_case "round-trip" `Quick test_eqn_roundtrip;
          QCheck_alcotest.to_alcotest prop_eqn_robust;
        ] );
      ( "mapper",
        [
          Alcotest.test_case "simple forms" `Quick test_map_simple_forms;
          Alcotest.test_case "full adder" `Quick test_map_full_adder;
          Alcotest.test_case "aoi match" `Quick test_map_aoi_match;
          Alcotest.test_case "oai match" `Quick test_map_oai_match;
          Alcotest.test_case "De Morgan polarity" `Quick
            test_map_demorgan_avoids_inverters;
          Alcotest.test_case "subexpression sharing" `Quick
            test_map_shares_subexpressions;
          Alcotest.test_case "inverter sharing" `Quick test_map_shares_inverters;
          Alcotest.test_case "output = input" `Quick test_map_output_is_input;
          Alcotest.test_case "constant rejected" `Quick
            test_map_constant_rejected;
          QCheck_alcotest.to_alcotest prop_mapper_equivalence;
          QCheck_alcotest.to_alcotest prop_mapper_reorderable;
        ] );
    ]
