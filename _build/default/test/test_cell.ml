(* Tests for the gate library: functions, configuration counts (Table 2),
   instance grouping, joint pivot exploration (Fig. 5), electrical
   parameters. *)

module T = Sp.Sp_tree
module G = Cell.Gate
module C = Cell.Config

let var = Bdd.var

(* --- Gate --- *)

let test_names_roundtrip () =
  List.iter
    (fun g ->
      Alcotest.(check string) "of_name . name = id" (G.name g)
        (G.name (G.of_name (G.name g))))
    G.library

let test_of_name_unknown () =
  Alcotest.(check bool) "unknown raises" true
    (try
       ignore (G.of_name "xor9");
       false
     with Not_found -> true)

let test_make_rejects_bad () =
  let rejects k =
    try
      ignore (G.make k);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "nand1" true (rejects (G.Nand 1));
  Alcotest.(check bool) "nor0" true (rejects (G.Nor 0));
  Alcotest.(check bool) "single group" true (rejects (G.Aoi [ 3 ]));
  Alcotest.(check bool) "zero group" true (rejects (G.Oai [ 2; 0 ]));
  Alcotest.(check bool) "all singleton" true (rejects (G.Aoi [ 1; 1 ]))

let check_function name gate expected =
  let m = Bdd.manager () in
  Alcotest.(check bool) name true (Bdd.equal (G.function_bdd m gate) (expected m))

let test_functions () =
  check_function "inv" (G.of_name "inv") (fun m -> Bdd.not_ (var m 0));
  check_function "nand2" (G.of_name "nand2") (fun m ->
      Bdd.not_ Bdd.(var m 0 &&& var m 1));
  check_function "nor3" (G.of_name "nor3") (fun m ->
      Bdd.not_ Bdd.(var m 0 ||| var m 1 ||| var m 2));
  check_function "aoi21 = !(x0.x1 + x2)" (G.of_name "aoi21") (fun m ->
      Bdd.not_ Bdd.(var m 0 &&& var m 1 ||| var m 2));
  check_function "oai21 = !((x0+x1).x2)" (G.of_name "oai21") (fun m ->
      Bdd.not_ Bdd.((var m 0 ||| var m 1) &&& var m 2));
  check_function "aoi221" (G.of_name "aoi221") (fun m ->
      Bdd.not_
        Bdd.(var m 0 &&& var m 1 ||| (var m 2 &&& var m 3) ||| var m 4))

let test_arities () =
  let expect = [ ("inv", 1); ("nand4", 4); ("aoi222", 6); ("oai311", 5) ] in
  List.iter
    (fun (n, a) -> Alcotest.(check int) n a (G.arity (G.of_name n)))
    expect

let test_transistor_counts () =
  Alcotest.(check int) "inv" 2 (G.transistor_count (G.of_name "inv"));
  Alcotest.(check int) "nand2" 4 (G.transistor_count (G.of_name "nand2"));
  Alcotest.(check int) "aoi222" 12 (G.transistor_count (G.of_name "aoi222"))

(* Table 2 of the paper (counts regenerated; see DESIGN.md §6 on the
   illegible entries). *)
let test_table2_config_counts () =
  let expect =
    [
      ("inv", 1); ("nand2", 2); ("nor2", 2); ("nand3", 6); ("nor3", 6);
      ("aoi21", 4); ("oai21", 4); ("nand4", 24); ("nor4", 24);
      ("aoi22", 8); ("oai22", 8); ("aoi31", 12); ("oai31", 12);
      ("aoi211", 12); ("oai211", 12); ("aoi221", 24); ("oai221", 24);
      ("aoi222", 48); ("oai222", 48); ("aoi311", 36); ("oai311", 36);
    ]
  in
  List.iter
    (fun (n, c) -> Alcotest.(check int) n c (G.config_count (G.of_name n)))
    expect

let test_table2_instance_counts () =
  (* The paper's bracket annotations: aoi21[A,B], aoi31[A,B],
     aoi211[A,B,C], aoi221[A,B,C]; unannotated gates need one instance. *)
  let expect =
    [
      ("inv", 1); ("nand2", 1); ("nand4", 1); ("nor3", 1); ("aoi22", 1);
      ("aoi222", 1); ("aoi21", 2); ("oai21", 2); ("aoi31", 2);
      ("aoi211", 3); ("oai211", 3); ("aoi221", 3); ("oai221", 3);
    ]
  in
  List.iter
    (fun (n, c) -> Alcotest.(check int) n c (G.instance_count (G.of_name n)))
    expect

(* --- Config --- *)

let test_config_all_counts_match () =
  List.iter
    (fun g ->
      Alcotest.(check int) (G.name g) (G.config_count g)
        (List.length (C.all g)))
    G.library

let test_config_reference_first () =
  let g = G.of_name "oai21" in
  match C.all g with
  | first :: _ ->
      Alcotest.(check bool) "reference leads" true (C.equal first (C.reference g))
  | [] -> Alcotest.fail "no configs"

let test_config_all_distinct () =
  List.iter
    (fun g ->
      let cs = C.all g in
      let distinct = List.sort_uniq C.compare cs in
      Alcotest.(check int) (G.name g) (List.length cs) (List.length distinct))
    G.library

let test_config_functions_invariant () =
  let m = Bdd.manager () in
  List.iter
    (fun g ->
      let reference = G.function_bdd m g in
      List.iter
        (fun c ->
          Alcotest.(check bool)
            (G.name g ^ " config function")
            true
            (Bdd.equal (Sp.Network.output_function m (C.network c)) reference))
        (C.all g))
    G.library

(* Fig. 5: the pivot exploration of the whole example gate finds exactly
   the four configurations of Fig. 1(a). *)
let test_fig5_pivot_exploration () =
  let g = G.of_name "oai21" in
  let trace = ref [] in
  let found = C.pivot_all ~trace:(fun k c -> trace := (k, c) :: !trace) (C.reference g) in
  Alcotest.(check int) "4 configurations" 4 (List.length found);
  Alcotest.(check int) "3 discovered by pivoting" 3 (List.length !trace);
  (* And the set agrees with the exhaustive enumeration. *)
  let set l = List.sort_uniq C.compare l in
  Alcotest.(check int) "same set as all" 0
    (Stdlib.compare (set found) (set (C.all g)))

let prop_pivot_all_matches_all =
  QCheck.Test.make ~name:"joint pivot agrees with exhaustive enumeration"
    ~count:(List.length Cell.Gate.library)
    (QCheck.make
       ~print:(fun g -> G.name g)
       QCheck.Gen.(map (List.nth G.library) (int_bound (List.length G.library - 1))))
    (fun g ->
      let set l = List.sort_uniq C.compare l in
      set (C.pivot_all (C.reference g)) = set (C.all g))

let test_index_in () =
  let g = G.of_name "nand3" in
  let cs = C.all g in
  List.iteri
    (fun i c -> Alcotest.(check int) "index round-trip" i (C.index_in cs c))
    cs

(* --- Process / electrical --- *)

let test_process_validation () =
  Alcotest.(check bool) "negative vdd rejected" true
    (try
       ignore
         (Cell.Process.make ~vdd:(-1.) ~c_gate:1e-15 ~c_junction:1e-15
            ~c_wire:1e-15 ~r_nmos:1e3 ~r_pmos:1e3);
       false
     with Invalid_argument _ -> true)

let test_node_capacitance () =
  let p = Cell.Process.default in
  let g = C.network (C.reference (G.of_name "nand2")) in
  (* Output: 3 terminals x 6 fF + 15 fF wire. *)
  Alcotest.(check (float 1e-20)) "output cap" (3. *. 6e-15 +. 15e-15)
    (Cell.Process.node_capacitance p g Sp.Network.Output);
  Alcotest.(check (float 1e-20)) "internal cap" (2. *. 6e-15)
    (Cell.Process.node_capacitance p g (Sp.Network.Internal 0))

let test_input_pin_capacitance () =
  let p = Cell.Process.default in
  let g = C.network (C.reference (G.of_name "nand2")) in
  (* Each input drives one NMOS and one PMOS. *)
  Alcotest.(check (float 1e-20)) "pin cap" (2. *. 10e-15)
    (Cell.Process.input_pin_capacitance p g 0)

let test_capacitance_invariant_total () =
  (* Reordering moves diffusion between internal nodes and the supply
     rails, but the gate's total junction area — counted over every
     node including the rails — is fixed (same devices). *)
  let p = Cell.Process.default in
  let g = G.of_name "aoi221" in
  let total c =
    let n = C.network c in
    let rail_terminals node = float_of_int (Sp.Network.node_degree n node) in
    List.fold_left
      (fun acc node -> acc +. Cell.Process.node_capacitance p n node)
      ((rail_terminals Sp.Network.Vdd +. rail_terminals Sp.Network.Vss) *. 6e-15)
      (Sp.Network.power_nodes n)
  in
  match C.all g with
  | [] -> Alcotest.fail "no configs"
  | first :: rest ->
      let reference = total first in
      List.iter
        (fun c ->
          Alcotest.(check bool) "total diffusion cap invariant" true
            (Float.abs (total c -. reference) < 1e-18))
        rest

let () =
  Alcotest.run "cell"
    [
      ( "gate",
        [
          Alcotest.test_case "name round-trip" `Quick test_names_roundtrip;
          Alcotest.test_case "unknown name" `Quick test_of_name_unknown;
          Alcotest.test_case "rejects bad kinds" `Quick test_make_rejects_bad;
          Alcotest.test_case "logic functions" `Quick test_functions;
          Alcotest.test_case "arities" `Quick test_arities;
          Alcotest.test_case "transistor counts" `Quick test_transistor_counts;
          Alcotest.test_case "Table 2 config counts" `Quick
            test_table2_config_counts;
          Alcotest.test_case "Table 2 instance counts" `Quick
            test_table2_instance_counts;
        ] );
      ( "config",
        [
          Alcotest.test_case "all counts match" `Quick
            test_config_all_counts_match;
          Alcotest.test_case "reference first" `Quick test_config_reference_first;
          Alcotest.test_case "all distinct" `Quick test_config_all_distinct;
          Alcotest.test_case "functions invariant" `Slow
            test_config_functions_invariant;
          Alcotest.test_case "Fig. 5 pivot exploration" `Quick
            test_fig5_pivot_exploration;
          QCheck_alcotest.to_alcotest prop_pivot_all_matches_all;
          Alcotest.test_case "index_in" `Quick test_index_in;
        ] );
      ( "process",
        [
          Alcotest.test_case "validation" `Quick test_process_validation;
          Alcotest.test_case "node capacitance" `Quick test_node_capacitance;
          Alcotest.test_case "input pin capacitance" `Quick
            test_input_pin_capacitance;
          Alcotest.test_case "total capacitance invariant" `Quick
            test_capacitance_invariant_total;
        ] );
    ]
