(* Tests for the sequential layer: machine construction, the register
   fixpoint, the cycle-accurate reference, and datapath optimization.
   The binary counter provides exact expectations (bit i toggles every
   2^i cycles), the LFSR validates the fixpoint where its independence
   approximation is sound. *)

module M = Sequential.Machine
module C = Netlist.Circuit
module S = Stoch.Signal_stats

let proc = Cell.Process.default
let table () = Power.Model.table proc
let cycle = Power.Scenario.cycle_time

let free_stats _ = S.make ~prob:0.5 ~density:(0.5 /. cycle)

(* --- construction --- *)

let test_create_validation () =
  let circuit = C.with_name (Circuits.Suite.find "c17") "c17" in
  let rejects registers fragment =
    try
      ignore (M.create circuit ~registers);
      Alcotest.failf "expected rejection (%s)" fragment
    with M.Invalid message ->
      Alcotest.(check bool)
        (Printf.sprintf "%S mentions %S" message fragment)
        true
        (let n = String.length message and m = String.length fragment in
         let rec go i = i + m <= n && (String.sub message i m = fragment || go (i + 1)) in
         go 0)
  in
  rejects [ ("nosuch", "g1") ] "is not a net";
  rejects [ ("g10", "g10") ] "must be a primary input";
  rejects [ ("g10", "g1"); ("g11", "g1") ] "bound to two registers"

let test_machine_partitions_inputs () =
  let m = Sequential.Machines.accumulator 4 in
  Alcotest.(check int) "4 registers" 4 (List.length (M.registers m));
  Alcotest.(check int) "4 free inputs" 4 (List.length (M.free_inputs m));
  let circuit = M.circuit m in
  List.iter
    (fun (d, q) ->
      Alcotest.(check bool) "q is a PI" true
        (List.mem q (C.primary_inputs circuit));
      Alcotest.(check bool) "d is driven" true
        (match C.driver circuit d with
        | C.Driven_by _ -> true
        | C.Primary_input -> false))
    (M.registers m)

(* --- cycle-accurate counter: exact toggle rates --- *)

let test_counter_simulation_exact_rates () =
  let m = Sequential.Machines.counter 4 in
  let trace =
    M.simulate proc m ~rng:(Stoch.Rng.create 5) ~cycles:1024
      ~inputs:free_stats ()
  in
  (* Bit i toggles every 2^i cycles: density = 2^-i per cycle. *)
  let circuit = M.circuit m in
  List.iteri
    (fun i (q, stats) ->
      ignore q;
      let expected = (2. ** float_of_int (-i)) /. cycle in
      let measured = S.density stats in
      Alcotest.(check bool)
        (Printf.sprintf "bit %d (%s): %.4g vs %.4g" i
           (C.net_name circuit q) expected measured)
        true
        (Float.abs (measured -. expected) /. expected < 0.05))
    trace.M.register_stats

let test_counter_simulation_power_positive () =
  let m = Sequential.Machines.counter 6 in
  let trace =
    M.simulate proc m ~rng:(Stoch.Rng.create 9) ~cycles:256 ~inputs:free_stats ()
  in
  Alcotest.(check bool) "positive power" true (trace.M.power > 0.)

(* --- fixpoint --- *)

let test_fixpoint_converges_lfsr () =
  let m = Sequential.Machines.lfsr 8 in
  let fp = M.steady_state (table ()) m ~inputs:free_stats () in
  Alcotest.(check bool) "converged" true fp.M.converged;
  Alcotest.(check bool) "few iterations" true (fp.M.iterations < 50);
  (* LFSR state bits are balanced. The feedback bit passes through the
     four-NAND XOR whose local propagation carries the reconvergence
     bias (P = 0.609 rather than 0.5 — see E11), so the tolerance
     reflects the model, not the machine. *)
  List.iter
    (fun (_, q) ->
      let s = Power.Analysis.stats fp.M.analysis q in
      Alcotest.(check bool) "P near 0.5 (model bias allowed)" true
        (Float.abs (S.prob s -. 0.5) < 0.15);
      Alcotest.(check bool) "D near 0.5/cycle" true
        (Float.abs ((S.density s *. cycle) -. 0.5) < 0.15))
    (M.registers m)

let test_fixpoint_matches_lfsr_simulation () =
  (* On a white state process the lag-one approximation is sound: the
     fixpoint register densities agree with the cycle simulation. *)
  let m = Sequential.Machines.lfsr 8 in
  let fp = M.steady_state (table ()) m ~inputs:free_stats () in
  let trace =
    M.simulate proc m ~rng:(Stoch.Rng.create 3) ~cycles:4096 ~inputs:free_stats ()
  in
  List.iter
    (fun (q, measured) ->
      let predicted = Power.Analysis.stats fp.M.analysis q in
      Alcotest.(check bool)
        (Printf.sprintf "q net %d: %.3g vs %.3g" q
           (S.density predicted *. cycle)
           (S.density measured *. cycle))
        true
        (Float.abs (S.density predicted -. S.density measured)
         /. S.density predicted
        < 0.3))
    trace.M.register_stats

let test_fixpoint_counter_known_bias () =
  (* The counter's temporal correlation breaks the approximation: the
     fixpoint predicts ~0.5 toggles/cycle for every bit, the truth is
     2^-i. Assert the bias so the limitation stays documented. *)
  let m = Sequential.Machines.counter 4 in
  let fp = M.steady_state (table ()) m ~inputs:free_stats () in
  let _, q3 = List.nth (M.registers m) 3 in
  let predicted = S.density (Power.Analysis.stats fp.M.analysis q3) *. cycle in
  Alcotest.(check bool)
    (Printf.sprintf "fixpoint says %.2f, truth is 0.125" predicted)
    true
    (predicted > 0.3)

let test_fixpoint_frozen_state_limitation () =
  (* With a = 0 the accumulator never changes: the true register
     density is 0. The lag-one fixpoint cannot represent frozen state
     (it treats consecutive samples as independent draws at P), so it
     reports ~2P(1-P) per cycle instead — the same class of limitation
     as the counter bias. Assert it so the limitation stays visible. *)
  let m = Sequential.Machines.accumulator 4 in
  let quiet net =
    ignore net;
    S.constant false
  in
  let fp = M.steady_state (table ()) m ~inputs:quiet () in
  Alcotest.(check bool) "converged" true fp.M.converged;
  let truth_by_cycle_sim =
    let trace =
      M.simulate proc m ~rng:(Stoch.Rng.create 2) ~cycles:512 ~inputs:quiet ()
    in
    List.fold_left
      (fun acc (_, s) -> acc +. S.density s)
      0. trace.M.register_stats
  in
  Alcotest.(check (float 1e-9)) "cycle sim: state truly frozen" 0.
    truth_by_cycle_sim;
  let predicted_total =
    List.fold_left
      (fun acc (_, q) ->
        acc +. (S.density (Power.Analysis.stats fp.M.analysis q) *. cycle))
      0. (M.registers m)
  in
  Alcotest.(check bool) "fixpoint overestimates frozen state" true
    (predicted_total > 0.5)

(* --- optimization --- *)

let test_optimize_accumulator () =
  let m = Sequential.Machines.accumulator 8 in
  let report, fp =
    M.optimize (table ()) ~delay:(Delay.Elmore.table proc) m ~inputs:free_stats
  in
  Alcotest.(check bool) "fixpoint converged" true fp.M.converged;
  Alcotest.(check bool) "power not worse" true
    (report.Reorder.Optimizer.power_after
    <= report.Reorder.Optimizer.power_before +. 1e-18);
  Alcotest.(check bool) "some gates changed" true
    (report.Reorder.Optimizer.gates_changed > 0)

let test_simulate_rejects_tiny_run () =
  let m = Sequential.Machines.counter 3 in
  Alcotest.(check bool) "cycles < 2 rejected" true
    (try
       ignore (M.simulate proc m ~rng:(Stoch.Rng.create 1) ~cycles:1 ~inputs:free_stats ());
       false
     with Invalid_argument _ -> true)

let test_machines_all () =
  List.iter
    (fun (name, m) ->
      Alcotest.(check bool)
        (name ^ " has registers")
        true
        (List.length (M.registers m) > 0))
    (Sequential.Machines.all ())

(* Johnson counter: after n cycles the pattern inverts; period 2n.
   Check the sequence functionally. *)
let test_johnson_sequence () =
  let n = 4 in
  let m = Sequential.Machines.johnson n in
  let circuit = M.circuit m in
  (* Start from all zeros and step manually via Eval. *)
  let state = Hashtbl.create 8 in
  List.iter (fun (_, q) -> Hashtbl.replace state q false) (M.registers m);
  let step () =
    let values = Netlist.Eval.nets circuit ~inputs:(Hashtbl.find state) in
    List.iter (fun (d, q) -> Hashtbl.replace state q values.(d)) (M.registers m)
  in
  let as_int () =
    List.fold_left
      (fun acc (i, (_, q)) ->
        if Hashtbl.find state q then acc lor (1 lsl i) else acc)
      0
      (List.mapi (fun i r -> (i, r)) (M.registers m))
  in
  let seen = ref [] in
  for _ = 1 to 2 * n do
    seen := as_int () :: !seen;
    step ()
  done;
  Alcotest.(check int) "returns to start after 2n steps" 0 (as_int ());
  Alcotest.(check int) "2n distinct states" (2 * n)
    (List.length (List.sort_uniq compare !seen))

let () =
  Alcotest.run "seq"
    [
      ( "machine",
        [
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "input partition" `Quick
            test_machine_partitions_inputs;
          Alcotest.test_case "all machines" `Quick test_machines_all;
          Alcotest.test_case "johnson sequence" `Quick test_johnson_sequence;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "counter exact rates" `Slow
            test_counter_simulation_exact_rates;
          Alcotest.test_case "counter power" `Quick
            test_counter_simulation_power_positive;
          Alcotest.test_case "rejects tiny run" `Quick test_simulate_rejects_tiny_run;
        ] );
      ( "fixpoint",
        [
          Alcotest.test_case "lfsr converges" `Quick test_fixpoint_converges_lfsr;
          Alcotest.test_case "lfsr matches simulation" `Slow
            test_fixpoint_matches_lfsr_simulation;
          Alcotest.test_case "counter bias documented" `Quick
            test_fixpoint_counter_known_bias;
          Alcotest.test_case "frozen-state limitation" `Quick
            test_fixpoint_frozen_state_limitation;
        ] );
      ( "optimization",
        [ Alcotest.test_case "accumulator" `Quick test_optimize_accumulator ] );
    ]
