type t = {
  name : string;
  inputs : string list;
  equations : (string * Expr.t) list;
  outputs : string list;
}

exception Parse_error of { line : int; message : string }

let parse_error line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

(* --- lexer --- *)

type token = Ident of string | Zero | One | Tilde | Amp | Bar | Caret | LParen | RParen

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let tokenize line text =
  let n = String.length text in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match text.[i] with
      | ' ' | '\t' -> go (i + 1) acc
      | '~' -> go (i + 1) (Tilde :: acc)
      | '&' -> go (i + 1) (Amp :: acc)
      | '|' -> go (i + 1) (Bar :: acc)
      | '^' -> go (i + 1) (Caret :: acc)
      | '(' -> go (i + 1) (LParen :: acc)
      | ')' -> go (i + 1) (RParen :: acc)
      | '0' -> go (i + 1) (Zero :: acc)
      | '1' -> go (i + 1) (One :: acc)
      | c when is_ident_start c ->
          let j = ref i in
          while !j < n && is_ident_char text.[!j] do
            incr j
          done;
          go !j (Ident (String.sub text i (!j - i)) :: acc)
      | c -> parse_error line "unexpected character %C" c
  in
  go 0 []

(* --- recursive-descent parser: or < xor < and < not --- *)

let parse_expr line tokens =
  let rest = ref tokens in
  let peek () = match !rest with [] -> None | t :: _ -> Some t in
  let advance () = match !rest with [] -> () | _ :: r -> rest := r in
  let rec or_level () =
    let first = xor_level () in
    let rec more acc =
      match peek () with
      | Some Bar ->
          advance ();
          more (xor_level () :: acc)
      | _ -> acc
    in
    match more [ first ] with [ single ] -> single | many -> Expr.or_ (List.rev many)
  and xor_level () =
    let first = and_level () in
    let rec more acc =
      match peek () with
      | Some Caret ->
          advance ();
          more (Expr.xor acc (and_level ()))
      | _ -> acc
    in
    more first
  and and_level () =
    let first = factor () in
    let rec more acc =
      match peek () with
      | Some Amp ->
          advance ();
          more (factor () :: acc)
      | _ -> acc
    in
    match more [ first ] with [ single ] -> single | many -> Expr.and_ (List.rev many)
  and factor () =
    match peek () with
    | Some Tilde ->
        advance ();
        Expr.not_ (factor ())
    | Some Zero ->
        advance ();
        Expr.const false
    | Some One ->
        advance ();
        Expr.const true
    | Some (Ident v) ->
        advance ();
        Expr.var v
    | Some LParen ->
        advance ();
        let e = or_level () in
        (match peek () with
        | Some RParen -> advance ()
        | _ -> parse_error line "missing closing parenthesis");
        e
    | Some (Amp | Bar | Caret | RParen) | None ->
        parse_error line "expected an operand"
  in
  let e = or_level () in
  if !rest <> [] then parse_error line "trailing tokens after expression";
  e

(* --- file structure --- *)

let significant_lines text =
  String.split_on_char '\n' text
  |> List.mapi (fun i l -> (i + 1, l))
  |> List.filter_map (fun (i, l) ->
         let l =
           match String.index_opt l '#' with
           | Some j -> String.sub l 0 j
           | None -> l
         in
         if String.trim l = "" then None else Some (i, l))

let of_string ?(name = "eqn") text =
  let inputs = ref [] and outputs = ref [] and equations = ref [] in
  let declared_inputs = ref false in
  List.iter
    (fun (line, raw) ->
      match String.index_opt raw '=' with
      | Some eq ->
          let lhs_text = String.trim (String.sub raw 0 eq) in
          let lhs =
            match tokenize line lhs_text with
            | [ Ident v ] -> v
            | _ -> parse_error line "left-hand side must be one identifier"
          in
          let rhs_text = String.sub raw (eq + 1) (String.length raw - eq - 1) in
          let rhs = parse_expr line (tokenize line rhs_text) in
          equations := (line, lhs, rhs) :: !equations
      | None -> (
          match tokenize line raw with
          | Ident "input" :: rest ->
              declared_inputs := true;
              List.iter
                (function
                  | Ident v -> inputs := v :: !inputs
                  | _ -> parse_error line "input expects identifiers")
                rest
          | Ident "output" :: rest ->
              List.iter
                (function
                  | Ident v -> outputs := v :: !outputs
                  | _ -> parse_error line "output expects identifiers")
                rest
          | _ -> parse_error line "expected input/output/equation"))
    (significant_lines text);
  let equations = List.rev !equations in
  let inputs = List.rev !inputs in
  let outputs = List.rev !outputs in
  (* Duplicate definitions and input/definition clashes. *)
  let defined = Hashtbl.create 16 in
  List.iter
    (fun (line, lhs, _) ->
      if Hashtbl.mem defined lhs then parse_error line "%S defined twice" lhs;
      if List.mem lhs inputs then
        parse_error line "%S is declared as an input" lhs;
      Hashtbl.add defined lhs ())
    equations;
  (* Reference discipline: a variable must be an input or an earlier
     definition; free variables become inputs only when no input line
     was given. *)
  let all_lhs = Hashtbl.copy defined in
  let available = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace available v ()) inputs;
  let inferred = ref [] in
  List.iter
    (fun (line, lhs, rhs) ->
      List.iter
        (fun v ->
          if not (Hashtbl.mem available v) then
            if Hashtbl.mem all_lhs v then
              parse_error line "%S used before its definition" v
            else if !declared_inputs then
              parse_error line "undefined name %S" v
            else begin
              Hashtbl.replace available v ();
              inferred := v :: !inferred
            end)
        (Expr.variables rhs);
      Hashtbl.replace available lhs ())
    equations;
  let inputs = inputs @ List.rev !inferred in
  let equations = List.map (fun (_, lhs, rhs) -> (lhs, rhs)) equations in
  (* Default outputs: defined names no equation references. *)
  let outputs =
    if outputs <> [] then begin
      List.iter
        (fun v ->
          if not (Hashtbl.mem defined v) then
            parse_error 0 "output %S is never defined" v)
        outputs;
      outputs
    end
    else begin
      let used = Hashtbl.create 16 in
      List.iter
        (fun (_, rhs) ->
          List.iter (fun v -> Hashtbl.replace used v ()) (Expr.variables rhs))
        equations;
      List.filter_map
        (fun (lhs, _) -> if Hashtbl.mem used lhs then None else Some lhs)
        equations
    end
  in
  if equations = [] then parse_error 0 "no equations";
  if outputs = [] then parse_error 0 "no outputs (every definition is consumed)";
  { name; inputs; equations; outputs }

let to_string t =
  let buf = Buffer.create 256 in
  if t.inputs <> [] then
    Buffer.add_string buf ("input " ^ String.concat " " t.inputs ^ "\n");
  List.iter
    (fun (lhs, rhs) ->
      Buffer.add_string buf (lhs ^ " = " ^ Expr.to_string rhs ^ "\n"))
    t.equations;
  Buffer.add_string buf ("output " ^ String.concat " " t.outputs ^ "\n");
  Buffer.contents buf

let load path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string ~name:(Filename.remove_extension (Filename.basename path)) text
