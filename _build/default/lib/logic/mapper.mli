(** Technology mapping of Boolean equations onto the Table-2 library.

    A polarity-aware recursive mapper: every subexpression is realized
    by one net plus a negation flag, so inverters are only materialized
    where a positive literal is structurally required. Matching order
    per node:

    - two-level OR-of-ANDs (resp. AND-of-ORs) whose group sizes fit a
      library AOI (resp. OAI) cell become a single complex gate;
    - XORs become the standard four-NAND structure, absorbing child
      polarities into the result flag for free;
    - plain AND/OR of ≤ 4 literals become one NAND/NOR (an all-negated
      AND collapses to a NOR by De Morgan without any inverter);
    - wider conjunctions are chunked through NAND4/INV trees.

    Common subexpressions are shared (the {!Expr} smart constructors
    canonicalize, the mapper memoizes), and so are inverters. Output and
    intermediate nets inherit their equation names where possible. *)

exception Unmappable of string
(** Raised when an output reduces to a constant after folding — the
    library has no tie cells. *)

val map : Eqn.t -> Netlist.Circuit.t
(** @raise Unmappable, see above. *)

val map_bindings :
  name:string ->
  inputs:string list ->
  equations:(string * Expr.t) list ->
  outputs:string list ->
  Netlist.Circuit.t
(** Programmatic entry point; [equations] must be topologically ordered
    (each right-hand side uses inputs or earlier left-hand sides), as
    {!Eqn.of_string} guarantees.
    @raise Invalid_argument on references to undefined names. *)
