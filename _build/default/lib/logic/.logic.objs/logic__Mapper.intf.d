lib/logic/mapper.mli: Eqn Expr Netlist
