lib/logic/eqn.ml: Buffer Expr Filename Format Fun Hashtbl List String
