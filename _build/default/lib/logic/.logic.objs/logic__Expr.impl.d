lib/logic/expr.ml: Bdd Format Hashtbl List Stdlib String
