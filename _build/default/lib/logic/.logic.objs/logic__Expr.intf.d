lib/logic/expr.mli: Bdd Format
