lib/logic/eqn.mli: Expr
