lib/logic/mapper.ml: Cell Eqn Expr Hashtbl List Netlist Printf Stdlib String
