type t =
  | Var of string
  | Const of bool
  | Not of t
  | And of t list
  | Or of t list
  | Xor of t * t

let rec compare a b =
  if a == b then 0
  else
    match (a, b) with
  | Var x, Var y -> Stdlib.compare x y
  | Const x, Const y -> Stdlib.compare x y
  | Not x, Not y -> compare x y
  | Xor (x1, x2), Xor (y1, y2) ->
      let c = compare x1 y1 in
      if c <> 0 then c else compare x2 y2
  | And xs, And ys | Or xs, Or ys -> compare_lists xs ys
  | Var _, (Const _ | Not _ | And _ | Or _ | Xor _) -> -1
  | (Const _ | Not _ | And _ | Or _ | Xor _), Var _ -> 1
  | Const _, (Not _ | And _ | Or _ | Xor _) -> -1
  | (Not _ | And _ | Or _ | Xor _), Const _ -> 1
  | Not _, (And _ | Or _ | Xor _) -> -1
  | (And _ | Or _ | Xor _), Not _ -> 1
  | And _, (Or _ | Xor _) -> -1
  | (Or _ | Xor _), And _ -> 1
  | Or _, Xor _ -> -1
  | Xor _, Or _ -> 1

and compare_lists xs ys =
  match (xs, ys) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs, y :: ys ->
      let c = compare x y in
      if c <> 0 then c else compare_lists xs ys

let equal a b = compare a b = 0

let var name =
  if name = "" then invalid_arg "Expr.var: empty name";
  Var name

let const b = Const b

let not_ = function
  | Not e -> e
  | Const b -> Const (not b)
  | (Var _ | And _ | Or _ | Xor _) as e -> Not e

(* Flatten + fold an associative-commutative connective.
   [absorbing] short-circuits ([false] for and, [true] for or);
   [neutral] disappears. Complementary children reduce to absorbing. *)
let ac_construct ~wrap ~unwrap ~absorbing children =
  let rec flatten acc = function
    | [] -> Some acc
    | e :: rest -> (
        match e with
        | Const b when b = absorbing -> None
        | Const _ -> flatten acc rest
        | other -> (
            match unwrap other with
            | Some inner -> flatten acc (inner @ rest)
            | None -> flatten (other :: acc) rest))
  in
  match flatten [] children with
  | None -> Const absorbing
  | Some collected -> (
      let sorted = List.sort_uniq compare collected in
      let complementary =
        List.exists (fun e -> List.exists (fun f -> equal f (not_ e)) sorted) sorted
      in
      if complementary then Const absorbing
      else
        match sorted with
        | [] -> Const (not absorbing)
        | [ e ] -> e
        | es -> wrap es)

let and_ children =
  ac_construct
    ~wrap:(fun es -> And es)
    ~unwrap:(function And es -> Some es | _ -> None)
    ~absorbing:false children

let or_ children =
  ac_construct
    ~wrap:(fun es -> Or es)
    ~unwrap:(function Or es -> Some es | _ -> None)
    ~absorbing:true children

let xor a b =
  match (a, b) with
  | Const x, Const y -> Const (x <> y)
  | Const false, e | e, Const false -> e
  | Const true, e | e, Const true -> not_ e
  | a, b ->
      if equal a b then Const false
      else if equal a (not_ b) then Const true
      else if compare a b <= 0 then Xor (a, b)
      else Xor (b, a)

let variables e =
  let tbl = Hashtbl.create 16 in
  let rec go = function
    | Var v -> Hashtbl.replace tbl v ()
    | Const _ -> ()
    | Not e -> go e
    | Xor (a, b) ->
        go a;
        go b
    | And es | Or es -> List.iter go es
  in
  go e;
  List.sort Stdlib.compare (Hashtbl.fold (fun v () acc -> v :: acc) tbl [])

let rec eval env = function
  | Var v -> env v
  | Const b -> b
  | Not e -> not (eval env e)
  | And es -> List.for_all (eval env) es
  | Or es -> List.exists (eval env) es
  | Xor (a, b) -> eval env a <> eval env b

let rec to_bdd m ~var_index = function
  | Var v -> Bdd.var m (var_index v)
  | Const true -> Bdd.one m
  | Const false -> Bdd.zero m
  | Not e -> Bdd.not_ (to_bdd m ~var_index e)
  | And es -> Bdd.conj m (List.map (to_bdd m ~var_index) es)
  | Or es -> Bdd.disj m (List.map (to_bdd m ~var_index) es)
  | Xor (a, b) -> Bdd.xor (to_bdd m ~var_index a) (to_bdd m ~var_index b)

(* Precedence for printing: | < ^ < & < ~/atom. *)
let rec to_string_prec level e =
  let wrap threshold s = if level > threshold then "(" ^ s ^ ")" else s in
  match e with
  | Var v -> v
  | Const true -> "1"
  | Const false -> "0"
  | Not e -> "~" ^ to_string_prec 3 e
  | And es -> wrap 2 (String.concat " & " (List.map (to_string_prec 3) es))
  | Xor (a, b) ->
      wrap 1 (to_string_prec 2 a ^ " ^ " ^ to_string_prec 2 b)
  | Or es -> wrap 0 (String.concat " | " (List.map (to_string_prec 1) es))

let to_string e = to_string_prec 0 e

let pp ppf e = Format.pp_print_string ppf (to_string e)
