(** Boolean expressions — the front-end representation the technology
    mapper consumes.

    Connectives are n-ary where associativity makes it natural; the
    smart constructors flatten, deduplicate and constant-fold so that
    structurally different spellings of one function tend to share a
    representation (which the mapper exploits for subexpression
    sharing). *)

type t = private
  | Var of string
  | Const of bool
  | Not of t
  | And of t list  (** ≥ 2 children, flattened, sorted, no duplicates *)
  | Or of t list
  | Xor of t * t

(** {1 Construction} *)

val var : string -> t
(** @raise Invalid_argument on an empty name. *)

val const : bool -> t
val not_ : t -> t
(** Cancels double negation and folds constants. *)

val and_ : t list -> t
(** Flattens nested conjunctions, drops [true], returns [false] on any
    [false] child, collapses duplicates, sorts children canonically.
    Empty list = [true]. *)

val or_ : t list -> t
val xor : t -> t -> t
(** Folds constants ([x ^ 1 = ~x]) and [x ^ x = 0]. *)

(** {1 Observation} *)

val equal : t -> t -> bool
val compare : t -> t -> int
val variables : t -> string list
(** Ascending, distinct. *)

val eval : (string -> bool) -> t -> bool
val to_bdd : Bdd.manager -> var_index:(string -> int) -> t -> Bdd.t
val to_string : t -> string
(** Parseable by {!Eqn}: [~] not, [&] and, [|] or, [^] xor, parentheses. *)

val pp : Format.formatter -> t -> unit
