module B = Netlist.Builder
module C = Netlist.Circuit

exception Unmappable of string

(* A mapped subexpression: [net] carries the expression when [negated]
   is false, its complement otherwise. *)
type signal = { net : C.net; negated : bool }

type state = {
  builder : B.t;
  memo : (Expr.t, signal) Hashtbl.t;
  inverse : (C.net, C.net) Hashtbl.t;  (* net -> its inverted copy *)
  gates : (string * C.net list, C.net) Hashtbl.t;  (* structural hashing *)
}

(* Structurally hash gate instances: an identical cell on identical
   nets is built once. Fully symmetric cells (NAND/NOR) are keyed on the
   sorted fanins, since every pin order is electrically available as a
   reordering anyway. *)
let emit state cell_name nets =
  let symmetric =
    String.length cell_name >= 3
    && (String.sub cell_name 0 3 = "nan" || String.sub cell_name 0 3 = "nor")
  in
  let key_nets = if symmetric then List.sort Stdlib.compare nets else nets in
  let key = (cell_name, key_nets) in
  match Hashtbl.find_opt state.gates key with
  | Some net -> net
  | None ->
      let net = B.gate state.builder cell_name nets in
      Hashtbl.add state.gates key net;
      net

let invert state net =
  match Hashtbl.find_opt state.inverse net with
  | Some m -> m
  | None ->
      let m = emit state "inv" [ net ] in
      Hashtbl.add state.inverse net m;
      Hashtbl.add state.inverse m net;
      m

let positive state s = if s.negated then invert state s.net else s.net

(* Group sizes of the library's AOI/OAI cells, with the gate that
   realizes each (declaration order = descending sizes = pin order). *)
let complex_cells =
  List.filter_map
    (fun gate ->
      match Cell.Gate.kind gate with
      | Cell.Gate.Aoi groups -> Some (`Aoi, groups, Cell.Gate.name gate)
      | Cell.Gate.Oai groups -> Some (`Oai, groups, Cell.Gate.name gate)
      | Cell.Gate.Inv | Cell.Gate.Nand _ | Cell.Gate.Nor _ -> None)
    Cell.Gate.library

(* Decompose the children of an OR (resp. AND) into AND (resp. OR)
   groups for AOI (resp. OAI) matching: atoms count as singleton
   groups. Returns groups sorted by descending size, or None when any
   child is neither a group nor an atom. *)
let decompose_groups ~inner children =
  let group_of = function
    | Expr.And es when inner = `And -> Some es
    | Expr.Or es when inner = `Or -> Some es
    | (Expr.Var _ | Expr.Not _ | Expr.Xor _) as atom -> Some [ atom ]
    | Expr.And _ | Expr.Or _ | Expr.Const _ -> None
  in
  let rec collect acc = function
    | [] -> Some (List.rev acc)
    | child :: rest -> (
        match group_of child with
        | Some g -> collect (g :: acc) rest
        | None -> None)
  in
  match collect [] children with
  | None -> None
  | Some groups ->
      Some
        (List.sort
           (fun a b -> Stdlib.compare (List.length b) (List.length a))
           groups)

let find_complex_cell kind sizes =
  List.find_opt
    (fun (k, groups, _) -> k = kind && groups = sizes)
    complex_cells

let rec map_expr state expr =
  match Hashtbl.find_opt state.memo expr with
  | Some s -> s
  | None ->
      let s = map_uncached state expr in
      Hashtbl.add state.memo expr s;
      s

and map_uncached state expr =
  match expr with
  | Expr.Var v -> (
      (* Variables are pre-seeded in the memo; reaching here is a
         programming error in the caller. *)
      ignore v;
      raise (Unmappable "unbound variable"))
  | Expr.Const _ ->
      raise (Unmappable "expression reduces to a constant (no tie cells)")
  | Expr.Not e ->
      let s = map_expr state e in
      { s with negated = not s.negated }
  | Expr.Xor (a, b) ->
      (* xor(~a, b) = ~xor(a, b): child polarities fold into the flag,
         so the four NANDs always work on the raw nets. *)
      let sa = map_expr state a and sb = map_expr state b in
      let na = sa.net and nb = sb.net in
      let m = emit state "nand2" [ na; nb ] in
      let y =
        emit state "nand2"
          [ emit state "nand2" [ na; m ]; emit state "nand2" [ nb; m ] ]
      in
      { net = y; negated = sa.negated <> sb.negated }
  | Expr.And es -> map_ac state `And es
  | Expr.Or es -> map_ac state `Or es

(* AND/OR of arbitrary width, with complex-cell matching first. *)
and map_ac state polarity children =
  match try_complex state polarity children with
  | Some s -> s
  | None ->
      let n = List.length children in
      if n <= 4 then map_simple state polarity children
      else begin
        (* Chunk wide gates through 4-input trees. *)
        let rec chunks acc current count = function
          | [] -> List.rev (List.rev current :: acc)
          | e :: rest ->
              if count = 4 then chunks (List.rev current :: acc) [ e ] 1 rest
              else chunks acc (e :: current) (count + 1) rest
        in
        let groups = chunks [] [] 0 children in
        let partials =
          List.map
            (function
              | [ single ] -> map_expr state single
              | chunk -> map_simple state polarity chunk)
            groups
        in
        map_ac_signals state polarity partials
      end

(* AND/OR over already-mapped signals (used above the chunking). *)
and map_ac_signals state polarity signals =
  match signals with
  | [ s ] -> s
  | _ ->
      let n = List.length signals in
      if n <= 4 then emit_simple state polarity signals
      else
        let rec chunks acc current count = function
          | [] -> List.rev (List.rev current :: acc)
          | s :: rest ->
              if count = 4 then chunks (List.rev current :: acc) [ s ] 1 rest
              else chunks acc (s :: current) (count + 1) rest
        in
        let partials =
          List.map
            (function
              | [ single ] -> single
              | chunk -> emit_simple state polarity chunk)
            (chunks [] [] 0 signals)
        in
        map_ac_signals state polarity partials

and map_simple state polarity children =
  emit_simple state polarity (List.map (map_expr state) children)

(* One NAND/NOR level over ≤ 4 signals. De Morgan picks the cheaper
   gate: an all-negated AND is a NOR of the raw nets (zero inverters),
   and symmetrically. *)
and emit_simple state polarity signals =
  let n = List.length signals in
  assert (n >= 2 && n <= 4);
  let all_negated = List.for_all (fun s -> s.negated) signals in
  let raw_nets = List.map (fun s -> s.net) signals in
  match (polarity, all_negated) with
  | `And, true ->
      (* and(~x...) = ~or(x...) = nor(x...) *)
      let name = "nor" ^ string_of_int n in
      { net = emit state name raw_nets; negated = false }
  | `Or, true ->
      let name = "nand" ^ string_of_int n in
      { net = emit state name raw_nets; negated = false }
  | `And, false ->
      let name = "nand" ^ string_of_int n in
      let nets = List.map (positive state) signals in
      { net = emit state name nets; negated = true }
  | `Or, false ->
      let name = "nor" ^ string_of_int n in
      let nets = List.map (positive state) signals in
      { net = emit state name nets; negated = true }

(* Two-level AOI/OAI matching: OR of AND-groups (resp. AND of
   OR-groups) whose descending group sizes name a library cell. *)
and try_complex state polarity children =
  let kind, inner =
    match polarity with `Or -> (`Aoi, `And) | `And -> (`Oai, `Or)
  in
  match decompose_groups ~inner children with
  | None -> None
  | Some groups -> (
      let sizes = List.map List.length groups in
      if List.length groups < 2 || List.for_all (fun s -> s = 1) sizes then None
      else
        match find_complex_cell kind sizes with
        | None -> None
        | Some (_, _, cell_name) ->
            let leaves = List.concat groups in
            let nets =
              List.map
                (fun leaf -> positive state (map_expr state leaf))
                leaves
            in
            Some { net = emit state cell_name nets; negated = true })

let map_bindings ~name ~inputs ~equations ~outputs =
  let state =
    {
      builder = B.create ~name;
      memo = Hashtbl.create 64;
      inverse = Hashtbl.create 16;
      gates = Hashtbl.create 64;
    }
  in
  List.iter
    (fun v ->
      let net = B.input state.builder v in
      Hashtbl.replace state.memo (Expr.var v) { net; negated = false })
    inputs;
  let defined = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace defined v (Expr.var v)) inputs;
  (* Each lhs is mapped with earlier lhs occurrences substituted, so the
     memo table does the sharing across equations. *)
  let rec substitute e =
    match (e : Expr.t) with
    | Expr.Var v -> (
        match Hashtbl.find_opt defined v with
        | Some (Expr.Var v') when v' = v -> e
        | Some resolved -> resolved
        | None -> invalid_arg (Printf.sprintf "Mapper: undefined name %S" v))
    | Expr.Const _ -> e
    | Expr.Not x -> Expr.not_ (substitute x)
    | Expr.And xs -> Expr.and_ (List.map substitute xs)
    | Expr.Or xs -> Expr.or_ (List.map substitute xs)
    | Expr.Xor (a, b) -> Expr.xor (substitute a) (substitute b)
  in
  let named_nets = ref [] in
  let output_signals =
    let lhs_signal = Hashtbl.create 16 in
    List.iter
      (fun (lhs, rhs) ->
        let resolved = substitute rhs in
        if Hashtbl.mem defined lhs then
          invalid_arg (Printf.sprintf "Mapper: %S defined twice" lhs);
        Hashtbl.replace defined lhs resolved;
        let s =
          match resolved with
          | Expr.Const _ ->
              raise
                (Unmappable
                   (Printf.sprintf "output %S reduces to a constant" lhs))
          | _ -> map_expr state resolved
        in
        Hashtbl.replace lhs_signal lhs s;
        (* Only a positive-polarity net may carry the equation's name. *)
        if not s.negated then named_nets := (lhs, s.net) :: !named_nets)
      equations;
    List.map
      (fun out ->
        match Hashtbl.find_opt lhs_signal out with
        | Some s -> (out, s)
        | None -> invalid_arg (Printf.sprintf "Mapper: undefined output %S" out))
      outputs
  in
  (* Outputs must come out positive: pay a final inverter if needed. *)
  let output_nets =
    List.map
      (fun (out, s) ->
        let net = positive state s in
        (out, net))
      output_signals
  in
  List.iter (fun (_, net) -> B.output state.builder net) output_nets;
  let circuit = B.finish state.builder in
  (* Give equation names to the gate-output nets that realize them
     (positive polarity only, first writer wins, never rename a primary
     input — an output may legitimately alias one). *)
  let circuit = ref circuit in
  List.iter
    (fun (name, net) ->
      let is_input = C.driver !circuit net = C.Primary_input in
      if
        (not is_input)
        && C.net_of_name !circuit name = None
        && C.net_name !circuit net <> name
      then
        try circuit := C.rename_net !circuit net name with C.Invalid _ -> ())
    (List.rev (output_nets @ !named_nets));
  !circuit

let map (eqn : Eqn.t) =
  map_bindings ~name:eqn.Eqn.name ~inputs:eqn.Eqn.inputs
    ~equations:eqn.Eqn.equations ~outputs:eqn.Eqn.outputs
