(** A tiny equation-file front end.

    {v
    # full adder
    input a b cin
    sum  = a ^ b ^ cin
    cout = (a & b) | (cin & (a ^ b))
    output sum cout
    v}

    Operators by increasing binding strength: [|], [^], [&], [~];
    parentheses as usual; constants [0] and [1]; identifiers are
    [\[A-Za-z_\]\[A-Za-z0-9_\]*]. Right-hand sides may reference earlier
    left-hand sides. [input] lines are optional (free variables are
    inferred); [output] defaults to every defined name that no later
    equation uses. *)

type t = {
  name : string;
  inputs : string list;  (** declaration order *)
  equations : (string * Expr.t) list;  (** file order *)
  outputs : string list;
}

exception Parse_error of { line : int; message : string }

val of_string : ?name:string -> string -> t
(** @raise Parse_error on syntax errors, duplicate definitions, use of
    undefined names (when [input] lines are present), or cyclic
    definitions. *)

val to_string : t -> string
(** Round-trips through {!of_string}. *)

val load : string -> t
(** Reads a file; the circuit name defaults to the basename. *)
