(** Zero-delay functional evaluation of a circuit.

    Used by tests and examples to check that generated circuits compute
    what they claim, and to cross-validate the switch-level simulator
    (whose settled node values must agree with functional evaluation on
    every input vector). *)

val nets : Circuit.t -> inputs:(Circuit.net -> bool) -> bool array
(** Value of every net under the given primary-input assignment. *)

val outputs : Circuit.t -> inputs:(Circuit.net -> bool) -> bool list
(** Primary-output values, in declaration order. *)

val output_bdds : Bdd.manager -> Circuit.t -> (Circuit.net * Bdd.t) list
(** Symbolic functions of the primary outputs over BDD variables indexed
    by position in [Circuit.primary_inputs] (global functional
    equivalence checking for small circuits). *)
