(** Structural lint: warnings about legal-but-suspicious circuits.

    {!Circuit.create} enforces hard invariants; this pass reports the
    soft ones a reviewer would flag. *)

type warning =
  | Dangling_net of Circuit.net
      (** driven by a gate but read by nothing and not an output *)
  | Unused_input of Circuit.net  (** primary input nobody reads *)
  | High_fanout of Circuit.net * int  (** fan-out beyond the threshold *)
  | Duplicate_gate of int * int
      (** two gate instances with the same cell and fanins *)
  | Output_is_input of Circuit.net  (** primary output wired to an input *)

val check : ?fanout_threshold:int -> Circuit.t -> warning list
(** [fanout_threshold] defaults to 8 (a heavy load for a Sea-of-Gates
    cell). Warnings are ordered by net/gate index. *)

val describe : Circuit.t -> warning -> string
