lib/netlist/lint.ml: Array Cell Circuit Hashtbl List Printf
