lib/netlist/circuit.ml: Array Cell Format Hashtbl List Option Printf Queue
