lib/netlist/eval.ml: Array Bdd Cell Circuit Hashtbl List Sp
