lib/netlist/builder.mli: Circuit
