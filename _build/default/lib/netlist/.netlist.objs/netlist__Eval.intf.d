lib/netlist/eval.mli: Bdd Circuit
