lib/netlist/io.ml: Array Buffer Cell Circuit Filename Format Fun Hashtbl List Printf String
