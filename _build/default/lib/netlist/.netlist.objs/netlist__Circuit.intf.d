lib/netlist/circuit.mli: Cell Format
