lib/netlist/lint.mli: Circuit
