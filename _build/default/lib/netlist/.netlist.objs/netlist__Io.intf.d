lib/netlist/io.mli: Circuit
