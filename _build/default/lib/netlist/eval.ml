let nets circuit ~inputs =
  let values = Array.make (Circuit.net_count circuit) false in
  List.iter
    (fun net -> values.(net) <- inputs net)
    (Circuit.primary_inputs circuit);
  List.iter
    (fun g ->
      let gate = Circuit.gate_at circuit g in
      let env pin = values.(gate.Circuit.fanins.(pin)) in
      values.(gate.Circuit.output) <-
        not
          (Sp.Sp_tree.conducts Sp.Sp_tree.Nmos env
             (Cell.Gate.pull_down gate.Circuit.cell)))
    (Circuit.topological_order circuit);
  values

let outputs circuit ~inputs =
  let values = nets circuit ~inputs in
  List.map (fun net -> values.(net)) (Circuit.primary_outputs circuit)

let output_bdds m circuit =
  let var_of_input = Hashtbl.create 16 in
  List.iteri
    (fun i net -> Hashtbl.add var_of_input net i)
    (Circuit.primary_inputs circuit);
  let funcs = Array.make (Circuit.net_count circuit) (Bdd.zero m) in
  List.iter
    (fun net -> funcs.(net) <- Bdd.var m (Hashtbl.find var_of_input net))
    (Circuit.primary_inputs circuit);
  List.iter
    (fun g ->
      let gate = Circuit.gate_at circuit g in
      let f = Cell.Gate.function_bdd m gate.Circuit.cell in
      let substituted =
        (* Substitute pin variables with fanin functions. Pin variables
           are 0..arity-1; compose from the highest pin down so earlier
           substitutions cannot capture later pin variables... composing
           with shifted temporaries avoids capture entirely. *)
        let arity = Cell.Gate.arity gate.Circuit.cell in
        let shift = 1_000_000 in
        let lifted = ref f in
        for pin = 0 to arity - 1 do
          lifted := Bdd.compose !lifted pin (Bdd.var m (shift + pin))
        done;
        let result = ref !lifted in
        for pin = 0 to arity - 1 do
          result :=
            Bdd.compose !result (shift + pin) funcs.(gate.Circuit.fanins.(pin))
        done;
        !result
      in
      funcs.(gate.Circuit.output) <- substituted)
    (Circuit.topological_order circuit);
  List.map (fun net -> (net, funcs.(net))) (Circuit.primary_outputs circuit)
