type t = {
  name : string;
  mutable net_names : string list;  (* reversed *)
  mutable net_count : int;
  mutable inputs : Circuit.net list;  (* reversed *)
  mutable outputs : Circuit.net list;  (* reversed, deduplicated *)
  mutable gates : Circuit.gate list;  (* reversed *)
}

let create ~name =
  { name; net_names = []; net_count = 0; inputs = []; outputs = []; gates = [] }

let fresh_net b name =
  let id = b.net_count in
  let name = if name = "" then "n" ^ string_of_int id else name in
  b.net_names <- name :: b.net_names;
  b.net_count <- id + 1;
  id

let input b name =
  let id = fresh_net b name in
  b.inputs <- id :: b.inputs;
  id

let gate b ?(name = "") ?(config = 0) cell_name fanins =
  let cell = Cell.Gate.of_name cell_name in
  if List.length fanins <> Cell.Gate.arity cell then
    invalid_arg
      (Printf.sprintf "Builder.gate: %s expects %d fanins, got %d" cell_name
         (Cell.Gate.arity cell) (List.length fanins));
  let output = fresh_net b name in
  b.gates <-
    { Circuit.cell; config; fanins = Array.of_list fanins; output } :: b.gates;
  output

let inv b ?name x = gate b ?name "inv" [ x ]
let nand2 b ?name x y = gate b ?name "nand2" [ x; y ]
let nor2 b ?name x y = gate b ?name "nor2" [ x; y ]
let and2 b ?name x y = inv b ?name (nand2 b x y)
let or2 b ?name x y = inv b ?name (nor2 b x y)

(* Standard four-NAND xor; the final gate carries the caller's name. *)
let xor2 b ?name x y =
  let m = nand2 b x y in
  nand2 b ?name (nand2 b x m) (nand2 b y m)

let xnor2 b ?name x y = inv b ?name (xor2 b x y)

let output b net =
  if not (List.mem net b.outputs) then b.outputs <- net :: b.outputs

let finish b =
  Circuit.create ~name:b.name
    ~net_names:(Array.of_list (List.rev b.net_names))
    ~primary_inputs:(List.rev b.inputs)
    ~primary_outputs:(List.rev b.outputs)
    ~gates:(List.rev b.gates)
