(** Imperative construction of circuits.

    Nets must be created (as primary inputs or gate outputs) before they
    are used, which makes every built circuit acyclic by construction;
    {!finish} still runs the full {!Circuit.create} validation. *)

type t

val create : name:string -> t

val input : t -> string -> Circuit.net
(** Declares a primary input net.
    @raise Circuit.Invalid on a duplicate name (detected at {!finish}). *)

val gate :
  t -> ?name:string -> ?config:int -> string -> Circuit.net list -> Circuit.net
(** [gate b cell_name fanins] instantiates a library gate and returns its
    output net. [name] defaults to ["n<k>"]; [config] to 0 (the
    reference ordering).
    @raise Not_found on an unknown cell name.
    @raise Invalid_argument if the fanin count does not match the cell
    arity. *)

val inv : t -> ?name:string -> Circuit.net -> Circuit.net
val nand2 : t -> ?name:string -> Circuit.net -> Circuit.net -> Circuit.net
val nor2 : t -> ?name:string -> Circuit.net -> Circuit.net -> Circuit.net
(** Shorthands for the most common cells. *)

val and2 : t -> ?name:string -> Circuit.net -> Circuit.net -> Circuit.net
val or2 : t -> ?name:string -> Circuit.net -> Circuit.net -> Circuit.net
val xor2 : t -> ?name:string -> Circuit.net -> Circuit.net -> Circuit.net
val xnor2 : t -> ?name:string -> Circuit.net -> Circuit.net -> Circuit.net
(** Composite helpers expanded over the library (AND = NAND+INV, XOR =
    four NAND2 in the standard arrangement, ...). The optional [name]
    names the final output net. *)

val output : t -> Circuit.net -> unit
(** Marks a net as primary output (idempotent). *)

val finish : t -> Circuit.t
(** Validates and freezes. *)
