type align = Left | Right

type row = Cells of string list | Separator

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : row list;  (* reversed *)
}

let create ~columns =
  { headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Report.Table.add_row: wrong number of cells";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let widths t =
  let max_widths =
    List.fold_left
      (fun acc row ->
        match row with
        | Separator -> acc
        | Cells cells -> List.map2 (fun w c -> max w (String.length c)) acc cells)
      (List.map String.length t.headers)
      t.rows
  in
  max_widths

let pad align width s =
  let fill = width - String.length s in
  if fill <= 0 then s
  else
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s

let render t =
  let ws = widths t in
  let buf = Buffer.create 1024 in
  let line cells aligns =
    let padded = List.map2 (fun (w, a) c -> pad a w c)
        (List.combine ws aligns) cells in
    Buffer.add_string buf (String.concat "  " padded);
    Buffer.add_char buf '\n'
  in
  let rule () =
    Buffer.add_string buf
      (String.concat "--" (List.map (fun w -> String.make w '-') ws));
    Buffer.add_char buf '\n'
  in
  line t.headers (List.map (fun _ -> Left) t.headers);
  rule ();
  List.iter
    (function
      | Separator -> rule ()
      | Cells cells -> line cells t.aligns)
    (List.rev t.rows);
  Buffer.contents buf

let print t = print_string (render t)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 1024 in
  let line cells =
    Buffer.add_string buf (String.concat "," (List.map csv_escape cells));
    Buffer.add_char buf '\n'
  in
  line t.headers;
  List.iter
    (function Separator -> () | Cells cells -> line cells)
    (List.rev t.rows);
  Buffer.contents buf

let cell_float ?(decimals = 1) v = Printf.sprintf "%.*f" decimals v

let cell_percent ?decimals v = cell_float ?decimals v

let cell_signed_percent ?(decimals = 1) v =
  Printf.sprintf "%+.*f" decimals v

let engineering units v =
  let rec pick v = function
    | [ (unit_, _) ] -> (v, unit_)
    | (unit_, scale) :: rest ->
        if Float.abs v >= scale then (v /. scale, unit_) else pick v rest
    | [] -> assert false
  in
  let value, unit_ = pick v units in
  Printf.sprintf "%.3g %s" value unit_

let cell_power v =
  engineering
    [ ("W", 1.); ("mW", 1e-3); ("uW", 1e-6); ("nW", 1e-9); ("pW", 1e-12) ]
    v

let cell_time v =
  engineering
    [ ("s", 1.); ("ms", 1e-3); ("us", 1e-6); ("ns", 1e-9); ("ps", 1e-12) ]
    v
