let require_nonempty name = function
  | [] -> invalid_arg ("Report.Stats." ^ name ^ ": empty list")
  | _ :: _ -> ()

let mean xs =
  require_nonempty "mean" xs;
  List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  require_nonempty "stddev" xs;
  let m = mean xs in
  let var = mean (List.map (fun x -> (x -. m) ** 2.) xs) in
  sqrt var

let median xs =
  require_nonempty "median" xs;
  let sorted = List.sort Float.compare xs in
  let n = List.length sorted in
  let at i = List.nth sorted i in
  if n mod 2 = 1 then at (n / 2) else (at ((n / 2) - 1) +. at (n / 2)) /. 2.

let minimum xs =
  require_nonempty "minimum" xs;
  List.fold_left Float.min infinity xs

let maximum xs =
  require_nonempty "maximum" xs;
  List.fold_left Float.max neg_infinity xs

let correlation xs ys =
  if List.length xs <> List.length ys then
    invalid_arg "Report.Stats.correlation: length mismatch";
  if List.length xs < 2 then
    invalid_arg "Report.Stats.correlation: need at least two points";
  let mx = mean xs and my = mean ys in
  let cov =
    List.fold_left2 (fun acc x y -> acc +. ((x -. mx) *. (y -. my))) 0. xs ys
  in
  let sx = stddev xs and sy = stddev ys in
  let n = float_of_int (List.length xs) in
  if sx = 0. || sy = 0. then 0. else cov /. (n *. sx *. sy)

let geometric_mean_ratio pairs =
  require_nonempty "geometric_mean_ratio" pairs;
  let log_sum =
    List.fold_left
      (fun acc (a, b) ->
        if a <= 0. || b <= 0. then
          invalid_arg "Report.Stats.geometric_mean_ratio: non-positive value";
        acc +. log (a /. b))
      0. pairs
  in
  exp (log_sum /. float_of_int (List.length pairs))
