(** Plain-text table rendering for the experiment reports.

    Columns are sized to their widest cell; numeric cells are
    right-aligned, text cells left-aligned. The bench harness prints the
    paper's tables through this module so every experiment has one
    uniform, diffable output format. *)

type align = Left | Right

type t

val create : columns:(string * align) list -> t
(** Header row; every added row must match the column count. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument on width mismatch. *)

val add_separator : t -> unit
(** Horizontal rule (e.g. before an averages row). *)

val render : t -> string
(** Multi-line string, trailing newline included. *)

val print : t -> unit
(** [render] to stdout. *)

val to_csv : t -> string
(** Comma-separated values (quoted when needed), separators omitted. *)

(** {1 Cell formatting helpers} *)

val cell_float : ?decimals:int -> float -> string
(** Fixed-point with [decimals] (default 1). *)

val cell_percent : ?decimals:int -> float -> string
(** As {!cell_float}, no sign for positives, e.g. ["12.3"]. *)

val cell_signed_percent : ?decimals:int -> float -> string
(** With explicit sign, e.g. ["-4.7"] / ["+12.3"]. *)

val cell_power : float -> string
(** Engineering notation for watts, e.g. ["3.42 uW"]. *)

val cell_time : float -> string
(** Engineering notation for seconds, e.g. ["1.24 ns"]. *)
