(** Small summary-statistics helpers for experiment reporting. *)

val mean : float list -> float
(** @raise Invalid_argument on the empty list. *)

val stddev : float list -> float
(** Population standard deviation.
    @raise Invalid_argument on the empty list. *)

val median : float list -> float
(** @raise Invalid_argument on the empty list. *)

val minimum : float list -> float
val maximum : float list -> float

val correlation : float list -> float list -> float
(** Pearson correlation.
    @raise Invalid_argument on mismatched lengths or fewer than two
    points; returns 0 when either series is constant. *)

val geometric_mean_ratio : (float * float) list -> float
(** Geometric mean of [a/b] pairs — used to summarize model-vs-measured
    power ratios. @raise Invalid_argument if any value is non-positive
    or the list is empty. *)
