lib/report/stats.mli:
