lib/report/table.mli:
