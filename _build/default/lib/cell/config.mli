(** A full transistor-level configuration of a gate: a chosen ordering
    for the pull-up and the pull-down networks together.

    This is the unit the optimizer explores: the paper's Fig. 5 pivots
    over the internal nodes of the {e whole} gate graph, so the joint
    exploration lives here rather than in {!Sp.Sp_tree}. *)

type t = { pull_up : Sp.Sp_tree.t; pull_down : Sp.Sp_tree.t }

val reference : Gate.t -> t
(** The library's as-declared configuration. *)

val all : Gate.t -> t list
(** Every electrically distinct configuration (cartesian product of the
    two networks' orderings, reference first). Its length equals
    {!Gate.config_count}. *)

val pivot_all : ?trace:(int -> t -> unit) -> t -> t list
(** The paper's Fig. 4 algorithm on the whole gate: internal-node
    indices cover first the pull-down gaps, then the pull-up gaps.
    [trace] reports each newly discovered configuration with the pivoted
    node index — the reproduction of Fig. 5. Agrees with {!all} as a set
    (tested). *)

val network : t -> Sp.Network.t
(** Flattened transistor graph (Fig. 2(a)). *)

val internal_node_count : t -> int

val equal : t -> t -> bool
(** Electrical equality (canonical forms of both networks). *)

val compare : t -> t -> int

val index_in : t list -> t -> int
(** Position of an electrically equal configuration in a list.
    @raise Not_found if absent. *)

val same_shape : t -> t -> bool
(** [true] when the two configurations differ only by an input
    permutation (their label-erased network shapes coincide) — i.e.
    they are realizable by the same layout instance, so restricting the
    optimizer to [same_shape] candidates is exactly the classical
    {e input reordering} technique the paper generalizes (§2). *)

val pp : Format.formatter -> t -> unit
val to_string : ?names:(int -> string) -> t -> string
(** Prints as [PU=(b | (a1 . a2)) PD=((a1 | a2) . b)]. *)
