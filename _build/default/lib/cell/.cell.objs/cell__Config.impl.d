lib/cell/config.ml: Format Gate Hashtbl List Printf Sp
