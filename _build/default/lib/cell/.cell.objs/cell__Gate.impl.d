lib/cell/gate.ml: Bdd Format Hashtbl List Sp String
