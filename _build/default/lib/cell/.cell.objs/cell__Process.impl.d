lib/cell/process.ml: Float List Sp
