lib/cell/spice.ml: Buffer Config Gate List Printf Sp String
