lib/cell/process.mli: Sp
