lib/cell/spice.mli: Gate
