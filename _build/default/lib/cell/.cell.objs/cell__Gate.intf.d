lib/cell/gate.mli: Bdd Format Sp
