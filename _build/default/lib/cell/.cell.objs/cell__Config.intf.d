lib/cell/config.mli: Format Gate Sp
