type t = {
  vdd : float;
  c_gate : float;
  c_junction : float;
  c_wire : float;
  r_nmos : float;
  r_pmos : float;
}

let make ~vdd ~c_gate ~c_junction ~c_wire ~r_nmos ~r_pmos =
  let positive x = x > 0. && Float.is_finite x in
  if
    not
      (positive vdd && positive c_gate && positive c_junction
     && positive c_wire && positive r_nmos && positive r_pmos)
  then invalid_arg "Process.make: parameters must be positive";
  { vdd; c_gate; c_junction; c_wire; r_nmos; r_pmos }

let default =
  make ~vdd:5.0 ~c_gate:10e-15 ~c_junction:6e-15 ~c_wire:15e-15 ~r_nmos:5e3
    ~r_pmos:10e3

let device_resistance t = function
  | Sp.Sp_tree.Nmos -> t.r_nmos
  | Sp.Sp_tree.Pmos -> t.r_pmos

let node_capacitance t network node =
  let junction =
    float_of_int (Sp.Network.node_degree network node) *. t.c_junction
  in
  match node with
  | Sp.Network.Output -> junction +. t.c_wire
  | Sp.Network.Internal _ -> junction
  | Sp.Network.Vdd | Sp.Network.Vss ->
      invalid_arg "Process.node_capacitance: supply rail"

let input_pin_capacitance t network input =
  let driven =
    List.length
      (List.filter
         (fun (d : Sp.Network.device) -> d.input = input)
         (Sp.Network.devices network))
  in
  float_of_int driven *. t.c_gate
