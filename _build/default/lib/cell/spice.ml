module N = Sp.Network

let node_name = function
  | N.Vdd -> "vdd"
  | N.Vss -> "vss"
  | N.Output -> "y"
  | N.Internal i -> "n" ^ string_of_int i

let subckt ?name gate ~config =
  let configs = Config.all gate in
  let cfg =
    try List.nth configs config
    with Failure _ | Invalid_argument _ ->
      invalid_arg "Spice.subckt: configuration index out of range"
  in
  let network = Config.network cfg in
  let subckt_name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "%s_cfg%d" (Gate.name gate) config
  in
  let pins =
    List.init (Gate.arity gate) (fun i -> "x" ^ string_of_int i)
    @ [ "y"; "vdd"; "vss" ]
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "* %s: %s\n" subckt_name (Config.to_string cfg));
  Buffer.add_string buf
    (Printf.sprintf ".subckt %s %s\n" subckt_name (String.concat " " pins));
  List.iteri
    (fun i (d : N.device) ->
      (* MOS line: M<name> drain gate source bulk model. The source/
         drain orientation is symmetric for our purposes; bulk ties to
         the matching rail. *)
      let model, prefix, bulk =
        match d.polarity with
        | Sp.Sp_tree.Pmos -> ("pmos", "MP", "vdd")
        | Sp.Sp_tree.Nmos -> ("nmos", "MN", "vss")
      in
      Buffer.add_string buf
        (Printf.sprintf "%s%d %s x%d %s %s %s\n" prefix i (node_name d.a)
           d.input (node_name d.b) bulk model))
    (N.devices network);
  Buffer.add_string buf ".ends\n";
  Buffer.contents buf

let library_deck () =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "* treorder gate library, every transistor reordering\n";
  List.iter
    (fun gate ->
      for config = 0 to Gate.config_count gate - 1 do
        Buffer.add_string buf (subckt gate ~config);
        Buffer.add_char buf '\n'
      done)
    Gate.library;
  Buffer.contents buf
