(** The paper's Table-2 gate library.

    Every cell is a fully-complementary static CMOS gate defined by its
    pull-down network; the pull-up network is the series-parallel dual.
    Input pins are numbered [0 .. arity-1]. *)

type t

type kind =
  | Inv
  | Nand of int  (** fan-in *)
  | Nor of int
  | Aoi of int list  (** AND-group sizes, e.g. [Aoi [2;2;1]] = aoi221 *)
  | Oai of int list  (** OR-group sizes *)

val make : kind -> t
(** @raise Invalid_argument for fan-in < 2, group sizes < 1, or fewer
    than two groups in an AOI/OAI. *)

val of_name : string -> t
(** Parses ["inv"], ["nand3"], ["nor2"], ["aoi221"], ["oai21"], ...
    @raise Not_found on an unknown name. *)

val library : t list
(** The paper's Table 2: inv, nand2-4, nor2-4, aoi/oai 21, 22, 31, 211,
    221, 222 and 311 — ascending arity. *)

val name : t -> string
val kind : t -> kind
val arity : t -> int

val pull_down : t -> Sp.Sp_tree.t
(** Reference pull-down network (groups in declaration order, inputs
    assigned left to right). *)

val function_bdd : Bdd.manager -> t -> Bdd.t
(** Logic function over BDD variables [0 .. arity-1]. *)

val transistor_count : t -> int
(** Devices in the whole gate (pull-up + pull-down). *)

val config_count : t -> int
(** Number of electrically distinct transistor reorderings of the whole
    gate — the paper's Table-2 [#C] column. *)

val instance_count : t -> int
(** Number of layout instances needed to reach every configuration by
    input permutation alone — the paper's [\[A,B,...\]] annotations
    (configurations sharing an unlabeled network-shape pair form one
    instance). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
