(** Electrical process parameters.

    The paper extracts per-gate node capacitances from a Sea-of-Gates
    library; we model them analytically from a handful of process
    constants (see DESIGN.md §2). Only {e relative} powers and delays
    matter for the experiments, but the default numbers are picked to be
    plausible for the paper's mid-90s technology so absolute printouts
    read sensibly. *)

type t = {
  vdd : float;  (** supply voltage, V *)
  c_gate : float;  (** gate-oxide capacitance per transistor input pin, F *)
  c_junction : float;  (** diffusion capacitance per source/drain terminal, F *)
  c_wire : float;  (** fixed interconnect capacitance per gate output, F *)
  r_nmos : float;  (** NMOS on-resistance, Ω *)
  r_pmos : float;  (** PMOS on-resistance, Ω *)
}

val default : t
(** 5 V, 0.8 µm-era constants: [c_gate = 10 fF], [c_junction = 6 fF],
    [c_wire = 15 fF], [r_nmos = 5 kΩ], [r_pmos = 10 kΩ]. *)

val make :
  vdd:float ->
  c_gate:float ->
  c_junction:float ->
  c_wire:float ->
  r_nmos:float ->
  r_pmos:float ->
  t
(** @raise Invalid_argument unless every parameter is positive. *)

val device_resistance : t -> Sp.Sp_tree.polarity -> float

val node_capacitance : t -> Sp.Network.t -> Sp.Network.node -> float
(** Capacitance of a node {e inside} one gate: junction capacitance per
    attached device terminal, plus the wire capacitance on the output
    node. Fan-out gate-input load is added by the consumer (it depends
    on the circuit, not the cell). *)

val input_pin_capacitance : t -> Sp.Network.t -> int -> float
(** Capacitance presented by one input pin of a gate: [c_gate] per
    transistor the pin drives. Identical across reorderings. *)
