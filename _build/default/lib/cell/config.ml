module T = Sp.Sp_tree

type t = { pull_up : T.t; pull_down : T.t }

let reference gate =
  let pd = Gate.pull_down gate in
  { pull_up = T.dual pd; pull_down = pd }

let canonical_pair c = (T.canonical c.pull_up, T.canonical c.pull_down)

let equal a b =
  let ua, da = canonical_pair a and ub, db = canonical_pair b in
  T.equal ua ub && T.equal da db

let compare a b =
  let ua, da = canonical_pair a and ub, db = canonical_pair b in
  let c = T.compare ua ub in
  if c <> 0 then c else T.compare da db

let all gate =
  let start = reference gate in
  let ups = T.orderings start.pull_up in
  let downs = T.orderings start.pull_down in
  let combos =
    List.concat_map
      (fun pull_up -> List.map (fun pull_down -> { pull_up; pull_down }) downs)
      ups
  in
  (* Put the reference configuration first. *)
  start :: List.filter (fun c -> not (equal c start)) combos

let internal_node_count c =
  T.internal_node_count c.pull_down + T.internal_node_count c.pull_up

(* Joint pivot: internal nodes 0 .. pd_gaps-1 live in the pull-down
   network, the rest in the pull-up one (matching Network's numbering,
   which lays the pull-down first). *)
let pivot c k =
  let pd_gaps = T.internal_node_count c.pull_down in
  if k < pd_gaps then { c with pull_down = T.pivot c.pull_down k }
  else { c with pull_up = T.pivot c.pull_up (k - pd_gaps) }

let pivot_all ?(trace = fun _ _ -> ()) start =
  let n = internal_node_count start in
  let module Keys = Hashtbl in
  let visited = Keys.create 32 in
  let found = ref [ start ] in
  Keys.add visited (canonical_pair start) ();
  let rec search cfg current =
    let cfg = pivot cfg current in
    let key = canonical_pair cfg in
    if not (Keys.mem visited key) then begin
      Keys.add visited key ();
      found := cfg :: !found;
      trace current cfg;
      for idx = 0 to n - 1 do
        if idx <> current then search cfg idx
      done
    end
  in
  for idx = 0 to n - 1 do
    search start idx
  done;
  List.rev !found

let network c = Sp.Network.of_networks ~pull_up:c.pull_up ~pull_down:c.pull_down

let index_in configs c =
  let rec go i = function
    | [] -> raise Not_found
    | x :: rest -> if equal x c then i else go (i + 1) rest
  in
  go 0 configs

let rec erase = function
  | T.Leaf _ -> T.leaf 0
  | T.Series cs -> T.series (List.map erase cs)
  | T.Parallel cs -> T.parallel (List.map erase cs)

let same_shape a b =
  T.equal (T.canonical (erase a.pull_up)) (T.canonical (erase b.pull_up))
  && T.equal (T.canonical (erase a.pull_down)) (T.canonical (erase b.pull_down))

let to_string ?names c =
  Printf.sprintf "PU=%s PD=%s"
    (T.to_string ?names c.pull_up)
    (T.to_string ?names c.pull_down)

let pp ppf c = Format.pp_print_string ppf (to_string c)
