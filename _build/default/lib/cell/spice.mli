(** SPICE export of gate configurations.

    Emits one [.subckt] per configuration with generic MOS model names
    ([pmos]/[nmos]), so a reordered cell can be handed to an analog
    simulator for validation. Node names follow the internal graph
    ([y], [n0], [n1], ...); device names encode polarity and index. *)

val subckt : ?name:string -> Gate.t -> config:int -> string
(** E.g. for the oai21 reference configuration:
    {v
    .subckt oai21_cfg0 x0 x1 x2 y vdd vss
    MP0 vdd x0 n1 vdd pmos
    ...
    .ends
    v}
    @raise Invalid_argument on a configuration index out of range. *)

val library_deck : unit -> string
(** Every configuration of every library gate, one deck — the
    "upgraded library" of the paper's conclusion (a). *)
