module C = Netlist.Circuit
module S = Stoch.Signal_stats

type t = {
  circuit : C.t;
  registers : (C.net * C.net) list;  (* (d, q) *)
  free : C.net list;
}

exception Invalid of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

let create circuit ~registers =
  let resolve what name =
    match C.net_of_name circuit name with
    | Some net -> net
    | None -> invalid "%s %S is not a net of %s" what name (C.name circuit)
  in
  let pis = C.primary_inputs circuit in
  let bound = Hashtbl.create 16 in
  let pairs =
    List.map
      (fun (d_name, q_name) ->
        let d = resolve "register input" d_name in
        let q = resolve "register output" q_name in
        if not (List.mem q pis) then
          invalid "register output %S must be a primary input" q_name;
        if Hashtbl.mem bound q then
          invalid "primary input %S bound to two registers" q_name;
        Hashtbl.add bound q ();
        (d, q))
      registers
  in
  let free = List.filter (fun net -> not (Hashtbl.mem bound net)) pis in
  { circuit; registers = pairs; free }

let circuit t = t.circuit
let registers t = t.registers
let free_inputs t = t.free

(* --- fixpoint --- *)

type fixpoint = {
  analysis : Power.Analysis.t;
  iterations : int;
  converged : bool;
}

(* Register output statistics from its input's settled probability:
   the value changes across an edge iff consecutive samples differ;
   under the lag-one independence approximation that happens with
   probability 2·P·(1-P) per cycle. *)
let register_stats ~cycle_time p_d =
  S.make ~prob:p_d ~density:(2. *. p_d *. (1. -. p_d) /. cycle_time)

let steady_state table t ~inputs ?(cycle_time = Power.Scenario.cycle_time)
    ?(max_iterations = 500) ?(tolerance = 1e-6) ?(damping = 1.0) () =
  let q_stats = Hashtbl.create 16 in
  List.iter
    (fun (_, q) -> Hashtbl.replace q_stats q (register_stats ~cycle_time 0.5))
    t.registers;
  let lookup net =
    match Hashtbl.find_opt q_stats net with
    | Some s -> s
    | None -> inputs net
  in
  let rec iterate i analysis =
    let worst_change = ref 0. in
    List.iter
      (fun (d, q) ->
        let p_d = S.prob (Power.Analysis.stats analysis d) in
        let old = Hashtbl.find q_stats q in
        (* Damped update: undamped iteration oscillates on feedback like
           d = not q (period-2 orbits around the fixed point). *)
        let p_mixed = S.prob old +. (damping *. (p_d -. S.prob old)) in
        let fresh = register_stats ~cycle_time p_mixed in
        let change =
          Float.max
            (Float.abs (S.prob fresh -. S.prob old))
            (Float.abs (S.density fresh -. S.density old) *. cycle_time)
        in
        if change > !worst_change then worst_change := change;
        Hashtbl.replace q_stats q fresh)
      t.registers;
    if !worst_change <= tolerance then
      { analysis; iterations = i; converged = true }
    else if i >= max_iterations then
      { analysis; iterations = i; converged = false }
    else iterate (i + 1) (Power.Analysis.run table t.circuit ~inputs:lookup)
  in
  let first = Power.Analysis.run table t.circuit ~inputs:lookup in
  iterate 1 first

(* --- cycle-accurate reference --- *)

type trace = {
  cycles : int;
  register_stats : (C.net * S.t) list;
  power : float;
}

(* Per-cycle two-state Markov chain realizing (P, D): transition
   probabilities p01 = D·T/(2(1-P)), p10 = D·T/(2P), clamped to [0,1]. *)
let markov_step rng ~cycle_time stats current =
  let p = S.prob stats and d = S.density stats in
  if d <= 0. then current
  else
    let rate = d *. cycle_time /. 2. in
    let p01 = if p >= 1. then 1. else Float.min 1. (rate /. (1. -. p)) in
    let p10 = if p <= 0. then 1. else Float.min 1. (rate /. p) in
    if current then not (Stoch.Rng.bernoulli rng p10)
    else Stoch.Rng.bernoulli rng p01

let simulate proc t ~rng ~cycles ~inputs
    ?(cycle_time = Power.Scenario.cycle_time) () =
  if cycles < 2 then invalid_arg "Seq.Machine.simulate: cycles < 2";
  let pis = C.primary_inputs t.circuit in
  let streams = Hashtbl.create 16 in
  List.iter (fun net -> Hashtbl.replace streams net (Array.make cycles false)) pis;
  (* Initial values. *)
  let free_state = Hashtbl.create 16 in
  List.iter
    (fun net ->
      Hashtbl.replace free_state net
        (Stoch.Rng.bernoulli rng (S.prob (inputs net))))
    t.free;
  let q_state = Hashtbl.create 16 in
  List.iter (fun (_, q) -> Hashtbl.replace q_state q (Stoch.Rng.bool rng)) t.registers;
  for cycle = 0 to cycles - 1 do
    (* Advance free inputs (cycle 0 keeps the initial draw). *)
    if cycle > 0 then
      List.iter
        (fun net ->
          let current = Hashtbl.find free_state net in
          Hashtbl.replace free_state net
            (markov_step rng ~cycle_time (inputs net) current))
        t.free;
    let pi_value net =
      match Hashtbl.find_opt q_state net with
      | Some v -> v
      | None -> Hashtbl.find free_state net
    in
    List.iter
      (fun net -> (Hashtbl.find streams net).(cycle) <- pi_value net)
      pis;
    (* Next state. *)
    let values = Netlist.Eval.nets t.circuit ~inputs:pi_value in
    List.iter
      (fun (d, q) -> Hashtbl.replace q_state q values.(d))
      t.registers
  done;
  (* One zero-delay switch-level run over the recorded streams. *)
  let sim = Switchsim.Sim.build proc t.circuit in
  let waveform net =
    Stoch.Waveform.of_bits ~bits:(Hashtbl.find streams net) ~period:cycle_time
  in
  let result = Switchsim.Sim.run sim ~inputs:waveform () in
  let register_stats =
    List.map
      (fun (_, q) ->
        (q, Switchsim.Sim.measured_stats result q))
      t.registers
  in
  { cycles; register_stats; power = result.Switchsim.Sim.power }

let optimize table ~delay ?objective t ~inputs =
  let fp = steady_state table t ~inputs () in
  let stats net = Power.Analysis.stats fp.analysis net in
  let report =
    Reorder.Optimizer.optimize table ~delay ?objective t.circuit ~inputs:stats
  in
  (report, fp)
