(** Benchmark sequential machines for the E12 experiment. *)

val counter : int -> Machine.t
(** [n]-bit binary up-counter: incrementer core, state fed back. The
    textbook case of {e temporally correlated} state (bit [i] toggles
    every [2^i] cycles), where the fixpoint's independence approximation
    is knowingly wrong. *)

val lfsr : int -> Machine.t
(** Fibonacci LFSR with xor feedback from the two top taps: a white
    state process where the fixpoint is accurate. [n] in 3..24. *)

val accumulator : int -> Machine.t
(** [acc <- acc + a]: ripple-carry core with the sum fed back, operand
    bus [a] free — the datapath workload for sequential optimization. *)

val johnson : int -> Machine.t
(** [n]-stage Johnson (twisted-ring) counter: pure shifting with an
    inverting wrap (built with inverter pairs so the core has gates). *)

val all : unit -> (string * Machine.t) list
(** Canonical instances: counter8, lfsr8, acc8, johnson8. *)
