module B = Netlist.Builder

let counter n =
  if n < 2 then invalid_arg "Machines.counter: n < 2";
  (* Incrementer over state q0..q(n-1); sum bits feed back. *)
  let b = B.create ~name:(Printf.sprintf "counter%d" n) in
  let q = Array.init n (fun i -> B.input b (Printf.sprintf "q%d" i)) in
  let d = Array.make n q.(0) in
  d.(0) <- B.inv b ~name:"d0" q.(0);
  let carry = ref q.(0) in
  for i = 1 to n - 1 do
    d.(i) <- B.xor2 b ~name:(Printf.sprintf "d%d" i) q.(i) !carry;
    if i < n - 1 then carry := B.and2 b q.(i) !carry
  done;
  Array.iter (B.output b) d;
  let circuit = B.finish b in
  Machine.create circuit
    ~registers:(List.init n (fun i -> (Printf.sprintf "d%d" i, Printf.sprintf "q%d" i)))

let lfsr n =
  if n < 3 || n > 24 then invalid_arg "Machines.lfsr: n must be 3..24";
  let b = B.create ~name:(Printf.sprintf "lfsr%d" n) in
  let q = Array.init n (fun i -> B.input b (Printf.sprintf "q%d" i)) in
  (* Feedback bit from the two top taps; shift towards index 0 needs no
     logic, but registers want named d nets, so buffer through inverter
     pairs (keeps the core purely library gates). *)
  let feedback = B.xor2 b ~name:"fb" q.(n - 1) q.(n - 2) in
  B.output b feedback;
  for i = n - 1 downto 1 do
    B.output b (B.inv b ~name:(Printf.sprintf "d%d" i) (B.inv b q.(i - 1)))
  done;
  let circuit = B.finish b in
  Machine.create circuit
    ~registers:
      (("fb", "q0")
      :: List.init (n - 1) (fun i ->
             (Printf.sprintf "d%d" (i + 1), Printf.sprintf "q%d" (i + 1))))

let accumulator n =
  if n < 2 then invalid_arg "Machines.accumulator: n < 2";
  let b = B.create ~name:(Printf.sprintf "acc%d" n) in
  let a = Array.init n (fun i -> B.input b (Printf.sprintf "a%d" i)) in
  let q = Array.init n (fun i -> B.input b (Printf.sprintf "q%d" i)) in
  let carry = ref None in
  for i = 0 to n - 1 do
    let s, c =
      match !carry with
      | None ->
          ( B.xor2 b ~name:(Printf.sprintf "s%d" i) a.(i) q.(i),
            B.and2 b a.(i) q.(i) )
      | Some cin ->
          let sum = B.xor2 b ~name:(Printf.sprintf "s%d" i) (B.xor2 b a.(i) q.(i)) cin in
          let cout =
            B.inv b
              (B.gate b "aoi222" [ a.(i); q.(i); q.(i); cin; a.(i); cin ])
          in
          (sum, cout)
    in
    B.output b s;
    carry := Some c
  done;
  let circuit = B.finish b in
  Machine.create circuit
    ~registers:(List.init n (fun i -> (Printf.sprintf "s%d" i, Printf.sprintf "q%d" i)))

let johnson n =
  if n < 2 then invalid_arg "Machines.johnson: n < 2";
  let b = B.create ~name:(Printf.sprintf "johnson%d" n) in
  let q = Array.init n (fun i -> B.input b (Printf.sprintf "q%d" i)) in
  (* d0 = ~q(n-1); d(i) = q(i-1) buffered through an inverter pair. *)
  B.output b (B.inv b ~name:"d0" q.(n - 1));
  for i = 1 to n - 1 do
    B.output b (B.inv b ~name:(Printf.sprintf "d%d" i) (B.inv b q.(i - 1)))
  done;
  let circuit = B.finish b in
  Machine.create circuit
    ~registers:(List.init n (fun i -> (Printf.sprintf "d%d" i, Printf.sprintf "q%d" i)))

let all () =
  [
    ("counter8", counter 8);
    ("lfsr8", lfsr 8);
    ("acc8", accumulator 8);
    ("johnson8", johnson 8);
  ]
