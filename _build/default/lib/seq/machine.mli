(** Latch-bounded sequential machines over a combinational core.

    Scenario B of the paper frames the circuit as "the whole digital
    system, with latches at its inputs, working at a fixed frequency".
    This module closes that loop: a machine is a combinational circuit
    plus register bindings [(d, q)] — at every clock edge the value of
    net [d] is copied to primary input [q]. The combinational optimizer
    applies unchanged to the core; what the registers add is the
    question of which {e statistics} to feed it, answered two ways:

    - {!steady_state}: the standard fixpoint — iterate the paper's
      probability/density propagation with the register outputs'
      statistics re-derived from their inputs
      ([P(q) = P(d)], [D(q) = 2·P(d)·(1-P(d))] per cycle under the
      lag-one independence approximation) until convergence;
    - {!simulate}: cycle-accurate reference — run the machine for N
      clock cycles on random stimuli, measure empirical statistics and
      switch-level power from the recorded waveforms.

    The fixpoint's temporal-independence approximation is exact for
    white state processes (LFSRs) and knowingly wrong for strongly
    correlated ones (binary counter bits toggle at rate [2^-i], not
    [0.5]); E12 quantifies this. *)

type t

exception Invalid of string

val create :
  Netlist.Circuit.t -> registers:(string * string) list -> t
(** [create comb ~registers] with [(d_name, q_name)] pairs: [q] must be
    a primary input of [comb], each used once; [d] is any net.
    @raise Invalid on violations. *)

val circuit : t -> Netlist.Circuit.t
val registers : t -> (Netlist.Circuit.net * Netlist.Circuit.net) list
(** [(d, q)] pairs, as net ids. *)

val free_inputs : t -> Netlist.Circuit.net list
(** Primary inputs that are not register outputs. *)

(** {1 Steady-state statistics (fixpoint)} *)

type fixpoint = {
  analysis : Power.Analysis.t;
  iterations : int;
  converged : bool;
}

val steady_state :
  Power.Model.table ->
  t ->
  inputs:(Netlist.Circuit.net -> Stoch.Signal_stats.t) ->
  ?cycle_time:float ->
  ?max_iterations:int ->
  ?tolerance:float ->
  ?damping:float ->
  unit ->
  fixpoint
(** [inputs] covers the free inputs only. [cycle_time] defaults to
    {!Power.Scenario.cycle_time}; [max_iterations] to 500 (correlated
    feedback like a counter's carry chain converges geometrically but
    slowly); [tolerance] (max absolute change of any register
    probability or per-cycle density between iterations) to 1e-6;
    [damping] (default 1.0 = undamped) mixes each register's new
    probability with the previous one — lower it if a machine's
    iteration oscillates instead of converging. *)

(** {1 Cycle-accurate reference} *)

type trace = {
  cycles : int;
  register_stats : (Netlist.Circuit.net * Stoch.Signal_stats.t) list;
      (** empirical statistics of each register output [q] *)
  power : float;  (** switch-level power over the recorded run, W *)
}

val simulate :
  Cell.Process.t ->
  t ->
  rng:Stoch.Rng.t ->
  cycles:int ->
  inputs:(Netlist.Circuit.net -> Stoch.Signal_stats.t) ->
  ?cycle_time:float ->
  unit ->
  trace
(** Free inputs are driven by per-cycle two-state Markov chains
    realizing their [(P, D)]; registers start at random values; the
    recorded per-net bit streams drive one zero-delay switch-level run.
    @raise Invalid_argument if [cycles < 2]. *)

(** {1 Optimization} *)

val optimize :
  Power.Model.table ->
  delay:Delay.Elmore.table ->
  ?objective:Reorder.Optimizer.objective ->
  t ->
  inputs:(Netlist.Circuit.net -> Stoch.Signal_stats.t) ->
  Reorder.Optimizer.report * fixpoint
(** Reorders the combinational core under the machine's steady-state
    statistics; the returned report's circuit shares the original's
    register bindings (rebuild with {!create} if needed). *)
