lib/seq/machine.ml: Array Float Format Hashtbl List Netlist Power Reorder Stoch Switchsim
