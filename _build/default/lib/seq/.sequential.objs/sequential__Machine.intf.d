lib/seq/machine.mli: Cell Delay Netlist Power Reorder Stoch
