lib/seq/machines.ml: Array List Machine Netlist Printf
