lib/seq/machines.mli: Machine
