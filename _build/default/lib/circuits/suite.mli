(** The benchmark suite used by the Table-3 reproduction (DESIGN.md §2).

    Thirty-plus circuits: arithmetic (ripple/carry-select adders,
    multipliers, incrementers — the §1.1 carry-chain workloads), regular
    logic (parity, mux, decoder, comparators, majority, priority,
    reduction trees, ALU slices), the ISCAS c17 toy, and seeded random
    multilevel networks. All deterministic. *)

val all : unit -> (string * Netlist.Circuit.t) list
(** Every benchmark, built fresh, in canonical order. *)

val names : unit -> string list

val find : string -> Netlist.Circuit.t
(** @raise Not_found for an unknown benchmark name. *)

val small : unit -> (string * Netlist.Circuit.t) list
(** A fast subset (< 100 gates each) for smoke tests and examples. *)
