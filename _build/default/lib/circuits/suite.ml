module G = Generators

(* Builders are thunks so `all` constructs fresh circuits each call. *)
let catalogue : (string * (unit -> Netlist.Circuit.t)) list =
  [
    ("c17", G.c17);
    ("maj3", fun () -> G.majority 3);
    ("par4", fun () -> G.parity 4);
    ("dec2", fun () -> G.decoder 2);
    ("inc6", fun () -> G.incrementer 6);
    ("mux4", fun () -> G.mux_tree 4);
    ("rca4", fun () -> G.ripple_carry_adder 4);
    ("cmpeq4", fun () -> G.equality_comparator 4);
    ("cmpgt4", fun () -> G.magnitude_comparator 4);
    ("alu1", fun () -> G.alu_slice 1);
    ("maj5", fun () -> G.majority 5);
    ("dec3", fun () -> G.decoder 3);
    ("par9", fun () -> G.parity 9);
    ("prio8", fun () -> G.priority_encoder 8);
    ("tree16", fun () -> G.and_or_tree 16);
    ("mux8", fun () -> G.mux_tree 8);
    ("inc12", fun () -> G.incrementer 12);
    ("rca8", fun () -> G.ripple_carry_adder 8);
    ("cmpeq8", fun () -> G.equality_comparator 8);
    ("cmpgt8", fun () -> G.magnitude_comparator 8);
    ("dec4", fun () -> G.decoder 4);
    ("alu2", fun () -> G.alu_slice 2);
    ("mux16", fun () -> G.mux_tree 16);
    ("par16", fun () -> G.parity 16);
    ("tree24", fun () -> G.and_or_tree 24);
    ("csel8", fun () -> G.carry_select_adder 4);
    ("mult4", fun () -> G.array_multiplier 4);
    ("rca16", fun () -> G.ripple_carry_adder 16);
    ("alu4", fun () -> G.alu_slice 4);
    ("prio16", fun () -> G.priority_encoder 16);
    ("csel16", fun () -> G.carry_select_adder 8);
    ("mult5", fun () -> G.array_multiplier 5);
    ("rca24", fun () -> G.ripple_carry_adder 24);
    ("gray8", fun () -> G.gray_to_binary 8);
    ("bcd7seg", G.bcd_to_7seg);
    ("cla8", fun () -> G.carry_lookahead_adder 8);
    ("ks8", fun () -> G.kogge_stone_adder 8);
    ("ks16", fun () -> G.kogge_stone_adder 16);
    ("wal4", fun () -> G.wallace_multiplier 4);
    ("wal5", fun () -> G.wallace_multiplier 5);
    ("rnd_a", fun () -> G.random_logic ~seed:11 ~inputs:8 ~gates:60);
    ("rnd_b", fun () -> G.random_logic ~seed:23 ~inputs:12 ~gates:90);
    ("rnd_c", fun () -> G.random_logic ~seed:37 ~inputs:10 ~gates:140);
    ("rnd_d", fun () -> G.random_logic ~seed:41 ~inputs:16 ~gates:200);
    ("rnd_e", fun () -> G.random_logic ~seed:59 ~inputs:20 ~gates:280);
    ("rca32", fun () -> G.ripple_carry_adder 32);
    ("mult6", fun () -> G.array_multiplier 6);
    ("ks32", fun () -> G.kogge_stone_adder 32);
    ("rnd_f", fun () -> G.random_logic ~seed:61 ~inputs:24 ~gates:400);
    ("rnd_g", fun () -> G.random_logic ~seed:67 ~inputs:28 ~gates:540);
  ]

let all () =
  List.map
    (fun (name, build) ->
      (name, Netlist.Circuit.with_name (build ()) name))
    catalogue

let names () = List.map fst catalogue

let find name =
  match List.assoc_opt name catalogue with
  | Some build -> Netlist.Circuit.with_name (build ()) name
  | None -> raise Not_found

let small () =
  List.filter
    (fun (_, c) -> Netlist.Circuit.gate_count c < 100)
    (all ())
