module B = Netlist.Builder

let input_bus b prefix n = List.init n (fun i -> B.input b (Printf.sprintf "%s%d" prefix i))

let outputs b nets = List.iter (B.output b) nets

(* sum via two XORs, carry as inverted AOI222 majority. *)
let full_adder b a bb cin =
  let sum = B.xor2 b (B.xor2 b a bb) cin in
  let carry = B.inv b (B.gate b "aoi222" [ a; bb; bb; cin; a; cin ]) in
  (sum, carry)

let half_adder b a bb = (B.xor2 b a bb, B.and2 b a bb)

let mux2 b ~sel a0 a1 =
  let nsel = B.inv b sel in
  B.inv b (B.gate b "aoi22" [ sel; a1; nsel; a0 ])

(* Balanced binary reduction of a net list. *)
let rec reduce_tree b combine = function
  | [] -> invalid_arg "Generators.reduce_tree: empty"
  | [ x ] -> x
  | nets ->
      let rec pair = function
        | x :: y :: rest -> combine b x y :: pair rest
        | [ x ] -> [ x ]
        | [] -> []
      in
      reduce_tree b combine (pair nets)

let and_tree b nets = reduce_tree b (fun b x y -> B.and2 b x y) nets
let or_tree b nets = reduce_tree b (fun b x y -> B.or2 b x y) nets
let xor_tree b nets = reduce_tree b (fun b x y -> B.xor2 b x y) nets

let ripple_carry_adder n =
  if n < 1 then invalid_arg "ripple_carry_adder: n < 1";
  let b = B.create ~name:(Printf.sprintf "rca%d" n) in
  let a = input_bus b "a" n in
  let bb = input_bus b "b" n in
  let cin = B.input b "cin" in
  let _, sums, carry =
    List.fold_left2
      (fun (i, sums, carry) ai bi ->
        let s, c = full_adder b ai bi carry in
        ignore i;
        (i + 1, s :: sums, c))
      (0, [], cin) a bb
  in
  outputs b (List.rev sums);
  B.output b carry;
  B.finish b

(* Specialized first stages for the constant-carry chains of the
   carry-select blocks (the netlist has no constant nets). *)
let adder_chain_c0 b a bb =
  match (a, bb) with
  | a0 :: arest, b0 :: brest ->
      let s0, c0 = half_adder b a0 b0 in
      let sums, carry =
        List.fold_left2
          (fun (sums, carry) ai bi ->
            let s, c = full_adder b ai bi carry in
            (s :: sums, c))
          ([ s0 ], c0) arest brest
      in
      (List.rev sums, carry)
  | _ -> invalid_arg "adder_chain_c0: empty operands"

let adder_chain_c1 b a bb =
  match (a, bb) with
  | a0 :: arest, b0 :: brest ->
      let s0 = B.xnor2 b a0 b0 in
      let c0 = B.or2 b a0 b0 in
      let sums, carry =
        List.fold_left2
          (fun (sums, carry) ai bi ->
            let s, c = full_adder b ai bi carry in
            (s :: sums, c))
          ([ s0 ], c0) arest brest
      in
      (List.rev sums, carry)
  | _ -> invalid_arg "adder_chain_c1: empty operands"

let carry_select_adder n =
  if n < 1 then invalid_arg "carry_select_adder: n < 1";
  let b = B.create ~name:(Printf.sprintf "csel%d" (2 * n)) in
  let a = input_bus b "a" (2 * n) in
  let bb = input_bus b "b" (2 * n) in
  let cin = B.input b "cin" in
  let split l =
    let rec go i acc = function
      | rest when i = n -> (List.rev acc, rest)
      | x :: rest -> go (i + 1) (x :: acc) rest
      | [] -> assert false
    in
    go 0 [] l
  in
  let a_lo, a_hi = split a and b_lo, b_hi = split bb in
  (* Low half: plain ripple with cin. *)
  let _, low_sums, low_carry =
    List.fold_left2
      (fun (i, sums, carry) ai bi ->
        let s, c = full_adder b ai bi carry in
        ignore i;
        (i + 1, s :: sums, c))
      (0, [], cin) a_lo b_lo
  in
  (* High half twice (carry 0 / carry 1), then select. *)
  let sums0, carry0 = adder_chain_c0 b a_hi b_hi in
  let sums1, carry1 = adder_chain_c1 b a_hi b_hi in
  let high_sums =
    List.map2 (fun s0 s1 -> mux2 b ~sel:low_carry s0 s1) sums0 sums1
  in
  let carry = mux2 b ~sel:low_carry carry0 carry1 in
  outputs b (List.rev low_sums);
  outputs b high_sums;
  B.output b carry;
  B.finish b

let incrementer n =
  if n < 1 then invalid_arg "incrementer: n < 1";
  let b = B.create ~name:(Printf.sprintf "inc%d" n) in
  let xs = input_bus b "x" n in
  let rec go carry = function
    | [] -> ([], carry)
    | x :: rest ->
        let s = B.xnor2 b x (B.inv b carry) in
        (* s = x xor carry, built to vary the cell mix *)
        let c = B.and2 b x carry in
        let sums, out_carry = go c rest in
        (s :: sums, out_carry)
  in
  match xs with
  | [] -> assert false
  | x0 :: rest ->
      let s0 = B.inv b x0 in
      let sums, carry = go x0 rest in
      outputs b (s0 :: sums);
      B.output b carry;
      B.finish b

let array_multiplier n =
  if n < 2 then invalid_arg "array_multiplier: n < 2";
  let b = B.create ~name:(Printf.sprintf "mult%d" n) in
  let a = Array.of_list (input_bus b "a" n) in
  let bb = Array.of_list (input_bus b "b" n) in
  let partial i j = B.and2 b a.(j) bb.(i) in
  let acc = Array.make (2 * n) None in
  for j = 0 to n - 1 do
    acc.(j) <- Some (partial 0 j)
  done;
  for i = 1 to n - 1 do
    let carry = ref None in
    for j = 0 to n - 1 do
      let pos = i + j in
      let bit = partial i j in
      match (acc.(pos), !carry) with
      | None, None -> acc.(pos) <- Some bit
      | Some x, None ->
          let s, c = half_adder b x bit in
          acc.(pos) <- Some s;
          carry := Some c
      | None, Some c0 ->
          let s, c = half_adder b bit c0 in
          acc.(pos) <- Some s;
          carry := Some c
      | Some x, Some c0 ->
          let s, c = full_adder b x bit c0 in
          acc.(pos) <- Some s;
          carry := Some c
    done;
    (* Ripple the row's final carry into the upper accumulator bits. *)
    let pos = ref (i + n) in
    while !carry <> None && !pos < (2 * n) do
      (match (acc.(!pos), !carry) with
      | None, Some c ->
          acc.(!pos) <- Some c;
          carry := None
      | Some x, Some c ->
          let s, c' = half_adder b x c in
          acc.(!pos) <- Some s;
          carry := Some c'
      | _, None -> ());
      incr pos
    done
  done;
  Array.iter (function Some net -> B.output b net | None -> ()) acc;
  B.finish b

let parity n =
  if n < 2 then invalid_arg "parity: n < 2";
  let b = B.create ~name:(Printf.sprintf "par%d" n) in
  let xs = input_bus b "x" n in
  B.output b (xor_tree b xs);
  B.finish b

let mux_tree n =
  let k =
    let rec log2 acc v = if v <= 1 then acc else log2 (acc + 1) (v / 2) in
    log2 0 n
  in
  if n < 2 || 1 lsl k <> n then
    invalid_arg "mux_tree: width must be a power of two >= 2";
  let b = B.create ~name:(Printf.sprintf "mux%d" n) in
  let data = input_bus b "d" n in
  let sels = input_bus b "s" k in
  let out =
    List.fold_left
      (fun level sel ->
        let rec pair = function
          | a0 :: a1 :: rest -> mux2 b ~sel a0 a1 :: pair rest
          | [] -> []
          | [ _ ] -> assert false
        in
        pair level)
      data sels
  in
  (match out with [ y ] -> B.output b y | _ -> assert false);
  B.finish b

let decoder k =
  if k < 2 || k > 4 then invalid_arg "decoder: k must be in 2..4";
  let b = B.create ~name:(Printf.sprintf "dec%d" k) in
  let xs = Array.of_list (input_bus b "x" k) in
  let nxs = Array.map (fun x -> B.inv b x) xs in
  let nand_name = Printf.sprintf "nand%d" k in
  for minterm = 0 to (1 lsl k) - 1 do
    let literals =
      List.init k (fun i ->
          if minterm land (1 lsl i) <> 0 then xs.(i) else nxs.(i))
    in
    let y = B.inv b (B.gate b nand_name literals) in
    B.output b y
  done;
  B.finish b

let equality_comparator n =
  if n < 2 then invalid_arg "equality_comparator: n < 2";
  let b = B.create ~name:(Printf.sprintf "cmpeq%d" n) in
  let a = input_bus b "a" n in
  let bb = input_bus b "b" n in
  let eqs = List.map2 (fun x y -> B.xnor2 b x y) a bb in
  B.output b (and_tree b eqs);
  B.finish b

let magnitude_comparator n =
  if n < 2 then invalid_arg "magnitude_comparator: n < 2";
  let b = B.create ~name:(Printf.sprintf "cmpgt%d" n) in
  let a = Array.of_list (input_bus b "a" n) in
  let bb = Array.of_list (input_bus b "b" n) in
  (* a > b: scan from the MSB; term i fires when all higher bits are
     equal and a_i > b_i. *)
  let eq i = B.xnor2 b a.(i) bb.(i) in
  let gt i = B.and2 b a.(i) (B.inv b bb.(i)) in
  let terms = ref [ gt (n - 1) ] in
  let prefix = ref (eq (n - 1)) in
  for i = n - 2 downto 0 do
    terms := B.and2 b !prefix (gt i) :: !terms;
    if i > 0 then prefix := B.and2 b !prefix (eq i)
  done;
  B.output b (or_tree b !terms);
  B.finish b

let majority n =
  let b = B.create ~name:(Printf.sprintf "maj%d" n) in
  let xs = input_bus b "x" n in
  (match (n, xs) with
  | 3, [ x; y; z ] ->
      B.output b (B.inv b (B.gate b "aoi222" [ x; y; y; z; x; z ]))
  | 5, _ ->
      (* OR over the AND of every 3-subset. *)
      let arr = Array.of_list xs in
      let triples = ref [] in
      for i = 0 to 4 do
        for j = i + 1 to 4 do
          for k = j + 1 to 4 do
            triples :=
              B.inv b (B.gate b "nand3" [ arr.(i); arr.(j); arr.(k) ])
              :: !triples
          done
        done
      done;
      B.output b (or_tree b !triples)
  | _ -> invalid_arg "majority: n must be 3 or 5");
  B.finish b

let priority_encoder n =
  if n < 2 then invalid_arg "priority_encoder: n < 2";
  let b = B.create ~name:(Printf.sprintf "prio%d" n) in
  let xs = Array.of_list (input_bus b "x" n) in
  (* out.(n-1) = x.(n-1); out.(i) = x.(i) & none-above(i). *)
  let any_above = Array.make n None in
  for i = n - 2 downto 0 do
    any_above.(i) <-
      (match any_above.(i + 1) with
      | None -> Some xs.(n - 1)
      | Some higher -> Some (B.or2 b xs.(i + 1) higher))
  done;
  for i = 0 to n - 1 do
    match any_above.(i) with
    | None -> B.output b xs.(i)
    | Some above -> B.output b (B.and2 b xs.(i) (B.inv b above))
  done;
  B.finish b

let and_or_tree n =
  if n < 4 then invalid_arg "and_or_tree: n < 4";
  let b = B.create ~name:(Printf.sprintf "tree%d" n) in
  let xs = input_bus b "x" n in
  (* Alternate NAND and NOR levels; odd leftovers ride to the next
     level unchanged. *)
  let rec level use_nand nets =
    match nets with
    | [] -> invalid_arg "and_or_tree: empty"
    | [ y ] -> y
    | _ ->
        let combine x y =
          if use_nand then B.nand2 b x y else B.nor2 b x y
        in
        let rec pair = function
          | x :: y :: rest -> combine x y :: pair rest
          | leftover -> leftover
        in
        level (not use_nand) (pair nets)
  in
  B.output b (level true xs);
  B.finish b

let alu_slice n =
  if n < 1 then invalid_arg "alu_slice: n < 1";
  let b = B.create ~name:(Printf.sprintf "alu%d" n) in
  let a = input_bus b "a" n in
  let bb = input_bus b "b" n in
  let cin = B.input b "cin" in
  let s0 = B.input b "s0" in
  let s1 = B.input b "s1" in
  let _, results, carry =
    List.fold_left2
      (fun (i, acc, carry) ai bi ->
        ignore i;
        let and_i = B.and2 b ai bi in
        let or_i = B.or2 b ai bi in
        let xor_i = B.xor2 b ai bi in
        let sum_i, carry' = full_adder b ai bi carry in
        let low = mux2 b ~sel:s0 and_i or_i in
        let high = mux2 b ~sel:s0 xor_i sum_i in
        let out = mux2 b ~sel:s1 low high in
        (i + 1, out :: acc, carry'))
      (0, [], cin) a bb
  in
  outputs b (List.rev results);
  B.output b carry;
  B.finish b

let c17 () =
  let b = B.create ~name:"c17" in
  let i1 = B.input b "g1" in
  let i2 = B.input b "g2" in
  let i3 = B.input b "g3" in
  let i6 = B.input b "g6" in
  let i7 = B.input b "g7" in
  let n10 = B.nand2 b ~name:"g10" i1 i3 in
  let n11 = B.nand2 b ~name:"g11" i3 i6 in
  let n16 = B.nand2 b ~name:"g16" i2 n11 in
  let n19 = B.nand2 b ~name:"g19" n11 i7 in
  let o22 = B.nand2 b ~name:"g22" n10 n16 in
  let o23 = B.nand2 b ~name:"g23" n16 n19 in
  B.output b o22;
  B.output b o23;
  B.finish b

let kogge_stone_adder n =
  if n < 2 then invalid_arg "kogge_stone_adder: n < 2";
  let b = B.create ~name:(Printf.sprintf "ks%d" n) in
  let a = Array.of_list (input_bus b "a" n) in
  let bb = Array.of_list (input_bus b "b" n) in
  let cin = B.input b "cin" in
  let p = Array.init n (fun i -> B.xor2 b a.(i) bb.(i)) in
  let g = Array.init n (fun i -> B.and2 b a.(i) bb.(i)) in
  (* Prefix combine (G,P) o (G',P') = (G | P.G', P.P') at doubling
     distances — the classic log-depth carry tree. *)
  let gp = Array.init n (fun i -> (g.(i), p.(i))) in
  let distance = ref 1 in
  while !distance < n do
    let next = Array.copy gp in
    for i = n - 1 downto !distance do
      let gi, pi = gp.(i) in
      let gj, pj = gp.(i - !distance) in
      next.(i) <- (B.or2 b gi (B.and2 b pi gj), B.and2 b pi pj)
    done;
    Array.blit next 0 gp 0 n;
    distance := 2 * !distance
  done;
  (* carry into position i: c_{-1} = cin; c_i = G_{i:0} | P_{i:0}.cin *)
  let carry_out i =
    let gi, pi = gp.(i) in
    B.or2 b gi (B.and2 b pi cin)
  in
  B.output b (B.xor2 b p.(0) cin);
  for i = 1 to n - 1 do
    B.output b (B.xor2 b p.(i) (carry_out (i - 1)))
  done;
  B.output b (carry_out (n - 1));
  B.finish b

let wallace_multiplier n =
  if n < 2 then invalid_arg "wallace_multiplier: n < 2";
  let b = B.create ~name:(Printf.sprintf "wal%d" n) in
  let a = Array.of_list (input_bus b "a" n) in
  let bb = Array.of_list (input_bus b "b" n) in
  let columns = Array.make (2 * n) [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      columns.(i + j) <- B.and2 b a.(j) bb.(i) :: columns.(i + j)
    done
  done;
  (* 3:2 reduction until every column holds at most two bits. *)
  let too_tall () = Array.exists (fun c -> List.length c > 2) columns in
  while too_tall () do
    let next = Array.make (2 * n) [] in
    Array.iteri
      (fun pos bits ->
        let rec reduce = function
          | x :: y :: z :: rest ->
              let s, c = full_adder b x y z in
              next.(pos) <- s :: next.(pos);
              if pos + 1 < 2 * n then next.(pos + 1) <- c :: next.(pos + 1);
              reduce rest
          | [ x; y ] when List.length bits > 2 ->
              (* column participated in this round: compress the pair too *)
              let s, c = half_adder b x y in
              next.(pos) <- s :: next.(pos);
              if pos + 1 < 2 * n then next.(pos + 1) <- c :: next.(pos + 1)
          | rest -> next.(pos) <- rest @ next.(pos)
        in
        reduce bits)
      columns;
    Array.blit next 0 columns 0 (2 * n)
  done;
  (* Final carry-propagate stage over the two remaining rows. *)
  let carry = ref None in
  for pos = 0 to (2 * n) - 1 do
    let bits = columns.(pos) in
    let bits = match !carry with Some c -> c :: bits | None -> bits in
    match bits with
    | [] -> ()
    | [ x ] ->
        B.output b x;
        carry := None
    | [ x; y ] ->
        let s, c = half_adder b x y in
        B.output b s;
        carry := Some c
    | [ x; y; z ] ->
        let s, c = full_adder b x y z in
        B.output b s;
        carry := Some c
    | _ -> assert false
  done;
  B.finish b

let carry_lookahead_adder n =
  if n < 2 || n > 12 then invalid_arg "carry_lookahead_adder: n must be 2..12";
  let module E = Logic.Expr in
  let a i = E.var (Printf.sprintf "a%d" i) in
  let bv i = E.var (Printf.sprintf "b%d" i) in
  let cin = E.var "cin" in
  let inputs =
    List.init n (fun i -> Printf.sprintf "a%d" i)
    @ List.init n (fun i -> Printf.sprintf "b%d" i)
    @ [ "cin" ]
  in
  let p i = E.xor (a i) (bv i) in
  let g i = E.and_ [ a i; bv i ] in
  (* c_{i} = carry into position i, fully expanded lookahead form. *)
  let carry_into i =
    let terms =
      (* g_j propagated through p_{j+1..i-1}, plus cin through all. *)
      List.init i (fun j ->
          E.and_ (g j :: List.init (i - 1 - j) (fun k -> p (j + 1 + k))))
      @ [ E.and_ (cin :: List.init i p) ]
    in
    E.or_ terms
  in
  let equations =
    List.init n (fun i ->
        (Printf.sprintf "s%d" i, E.xor (p i) (carry_into i)))
    @ [ ("cout", carry_into n) ]
  in
  let outputs = List.init n (fun i -> Printf.sprintf "s%d" i) @ [ "cout" ] in
  Logic.Mapper.map_bindings
    ~name:(Printf.sprintf "cla%d" n)
    ~inputs ~equations ~outputs

let gray_to_binary n =
  if n < 2 then invalid_arg "gray_to_binary: n < 2";
  let b = B.create ~name:(Printf.sprintf "gray%d" n) in
  let g = Array.of_list (input_bus b "g" n) in
  (* b_{n-1} = g_{n-1}; b_i = b_{i+1} xor g_i. *)
  let bits = Array.make n g.(n - 1) in
  for i = n - 2 downto 0 do
    bits.(i) <- B.xor2 b bits.(i + 1) g.(i)
  done;
  Array.iter (B.output b) bits;
  B.finish b

let bcd_to_7seg () =
  let module E = Logic.Expr in
  (* Segments lit per digit 0-15 (hex A-F keep the function fully
     specified on the upper rows). *)
  let digit_segments =
    [|
      "abcdef"; "bc"; "abdeg"; "abcdg"; "bcfg"; "acdfg"; "acdefg"; "abc";
      "abcdefg"; "abcdfg"; "abcefg"; "cdefg"; "adef"; "bcdeg"; "adefg"; "aefg";
    |]
  in
  let masks =
    List.map
      (fun seg ->
        let mask = ref 0 in
        Array.iteri
          (fun digit lit ->
            if String.contains lit seg then mask := !mask lor (1 lsl digit))
          digit_segments;
        (Printf.sprintf "s%c" seg, !mask))
      [ 'a'; 'b'; 'c'; 'd'; 'e'; 'f'; 'g' ]
  in
  let x = Array.init 4 (fun i -> E.var (Printf.sprintf "x%d" i)) in
  let minterm digit =
    E.and_
      (List.init 4 (fun i ->
           if digit land (1 lsl i) <> 0 then x.(i) else E.not_ x.(i)))
  in
  let equations =
    List.map
      (fun (seg, mask) ->
        let minterms =
          List.filteri (fun d _ -> mask land (1 lsl d) <> 0)
            (List.init 16 minterm)
        in
        (seg, E.or_ minterms))
      masks
  in
  Logic.Mapper.map_bindings ~name:"bcd7seg"
    ~inputs:[ "x0"; "x1"; "x2"; "x3" ]
    ~equations
    ~outputs:(List.map fst masks)

let random_logic ~seed ~inputs ~gates =
  if inputs < 1 || gates < 1 then invalid_arg "random_logic: empty";
  let rng = Stoch.Rng.create seed in
  let b = B.create ~name:(Printf.sprintf "rnd_s%d_g%d" seed gates) in
  let pool = ref [||] in
  let used = Hashtbl.create (inputs + gates) in
  let add net = pool := Array.append !pool [| net |] in
  List.iter add (input_bus b "x" inputs);
  let cells = Array.of_list Cell.Gate.library in
  for _ = 1 to gates do
    let cell = cells.(Stoch.Rng.int rng (Array.length cells)) in
    let len = Array.length !pool in
    (* Locality: mostly draw from the newest 16 nets so that depth grows
       with size, with an occasional long-range tap. *)
    let draw () =
      let window = min len 16 in
      let idx =
        if Stoch.Rng.bernoulli rng 0.15 then Stoch.Rng.int rng len
        else len - 1 - Stoch.Rng.int rng window
      in
      let net = !pool.(idx) in
      Hashtbl.replace used net ();
      net
    in
    let fanins = List.init (Cell.Gate.arity cell) (fun _ -> draw ()) in
    let config = Stoch.Rng.int rng (Cell.Gate.config_count cell) in
    add (B.gate b ~config (Cell.Gate.name cell) fanins)
  done;
  (* Every unread gate output becomes a primary output. *)
  Array.iteri
    (fun i net ->
      if i >= inputs && not (Hashtbl.mem used net) then B.output b net)
    !pool;
  B.finish b
