(** Parameterized benchmark circuit generators.

    The MCNC-substitute suite (DESIGN.md §2): arithmetic blocks with the
    carry-chain activity profile the paper's §1.1 motivates, regular
    logic structures, the ISCAS c17 toy, and seeded random multilevel
    logic. All generators are deterministic; every circuit is expressed
    directly over the Table-2 library. *)

val ripple_carry_adder : int -> Netlist.Circuit.t
(** [n]-bit adder, inputs [a0.. b0.. cin], outputs [s0.. s(n-1) cout].
    @raise Invalid_argument if [n < 1]. *)

val carry_select_adder : int -> Netlist.Circuit.t
(** [2n]-bit adder built from three [n]-bit ripple blocks and a mux
    stage. *)

val incrementer : int -> Netlist.Circuit.t
(** [n]-bit +1 (half-adder chain). *)

val array_multiplier : int -> Netlist.Circuit.t
(** [n]x[n] array multiplier (AND matrix + adder rows).
    @raise Invalid_argument if [n < 2]. *)

val parity : int -> Netlist.Circuit.t
(** [n]-input XOR tree. *)

val mux_tree : int -> Netlist.Circuit.t
(** [2^k]-to-1 multiplexer with [k] select lines; pass the number of
    data inputs [2^k]. @raise Invalid_argument unless a power of two
    >= 2. *)

val decoder : int -> Netlist.Circuit.t
(** [k]-to-[2^k] line decoder, [k] in 2..4. *)

val equality_comparator : int -> Netlist.Circuit.t
(** [a = b] over [n]-bit operands. *)

val magnitude_comparator : int -> Netlist.Circuit.t
(** [a > b] over [n]-bit operands. *)

val majority : int -> Netlist.Circuit.t
(** Majority of [n] inputs ([n] odd, 3 or 5). *)

val priority_encoder : int -> Netlist.Circuit.t
(** [n]-input priority resolver: output [i] high iff input [i] is the
    highest-index asserted input. *)

val and_or_tree : int -> Netlist.Circuit.t
(** Balanced alternating NAND/NOR reduction tree over [n] inputs. *)

val alu_slice : int -> Netlist.Circuit.t
(** [n]-bit mini-ALU: op ∈ {AND, OR, XOR, ADD} selected by [s1 s0]. *)

val c17 : unit -> Netlist.Circuit.t
(** The ISCAS-85 c17 benchmark: 6 NAND2 gates, 5 inputs, 2 outputs. *)

val kogge_stone_adder : int -> Netlist.Circuit.t
(** [n]-bit parallel-prefix adder: balanced log-depth carry tree — the
    structural opposite of the ripple chain for the E5 comparison.
    @raise Invalid_argument if [n < 2]. *)

val wallace_multiplier : int -> Netlist.Circuit.t
(** [n]x[n] multiplier with Wallace-tree (3:2 compressor) reduction and
    a ripple final stage. @raise Invalid_argument if [n < 2]. *)

val carry_lookahead_adder : int -> Netlist.Circuit.t
(** [n]-bit single-level carry-lookahead adder, generated as Boolean
    equations and technology-mapped (exercises {!Logic.Mapper} in the
    suite). Keep [n] modest — the lookahead terms grow quadratically. *)

val gray_to_binary : int -> Netlist.Circuit.t
(** [n]-bit Gray-code decoder (XOR chain). *)

val bcd_to_7seg : unit -> Netlist.Circuit.t
(** BCD digit to seven-segment decoder (full 16-row truth table,
    segments a..g), generated from minterm equations via the mapper. *)

val random_logic :
  seed:int -> inputs:int -> gates:int -> Netlist.Circuit.t
(** Seeded random multilevel network over the whole library; fanins are
    drawn with locality so depth grows with [gates]. Every gate output
    that remains unread becomes a primary output. *)

(** {1 Reusable pieces} *)

val full_adder :
  Netlist.Builder.t ->
  Netlist.Circuit.net ->
  Netlist.Circuit.net ->
  Netlist.Circuit.net ->
  Netlist.Circuit.net * Netlist.Circuit.net
(** [(sum, carry)] — XOR pair for the sum, AOI222+INV majority for the
    carry. *)

val mux2 :
  Netlist.Builder.t ->
  sel:Netlist.Circuit.net ->
  Netlist.Circuit.net ->
  Netlist.Circuit.net ->
  Netlist.Circuit.net
(** [mux2 b ~sel a0 a1] = [a1] when [sel] else [a0] (AOI22 + INV). *)
