lib/circuits/generators.ml: Array Cell Hashtbl List Logic Netlist Printf Stoch String
