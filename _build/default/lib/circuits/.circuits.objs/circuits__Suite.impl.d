lib/circuits/suite.ml: Generators List Netlist
