(** E1 — the paper's Table 1 / Fig. 1 motivation example.

    The gate implementing [y = (a1 + a2)·b] (oai21) is evaluated under
    the extended power model in its four transistor configurations, for
    the paper's two input-activity cases (all equilibrium probabilities
    0.5):

    - case 1: [D(a1) = 10K], [D(a2) = 100K], [D(b) = 1M] trans/s;
    - case 2: [D(a1) = 1M], [D(a2) = 100K], [D(b) = 10K].

    The paper reports powers relative to configuration (D) in case 1,
    a 19 % best-vs-worst reduction in case 1 and 17 % in case 2, and —
    the headline — that the {e optimal configuration flips} between the
    cases. Configuration letters in the scan are not recoverable, so we
    print our own configuration descriptions. *)

type row = {
  config_index : int;
  description : string;  (** e.g. ["PU=((a1 . a2) | b) PD=(b . (a1 | a2))"] *)
  case1_relative : float;  (** power / max case-1 power *)
  case2_relative : float;
}

type t = {
  rows : row list;
  case1_reduction_percent : float;  (** best vs worst, case 1 *)
  case2_reduction_percent : float;
  optimum_flips : bool;  (** argmin differs between the cases *)
}

val run : Common.t -> t

val render : t -> string
(** The table plus the two reduction lines, ready to print. *)
