module O = Reorder.Optimizer
module C = Netlist.Circuit

type row = {
  name : string;
  zero_power : float;
  timed_power : float;
  glitch_percent : float;
  timed_reduction_percent : float;
}

type t = { rows : row list; avg_glitch : float; avg_timed_reduction : float }

let gate_delay_fn (ctx : Common.t) circuit g =
  let gate = C.gate_at circuit g in
  let load =
    Power.Estimate.output_load ctx.Common.power
      ~external_load:ctx.Common.external_load circuit g
  in
  Delay.Elmore.worst_delay ctx.Common.delay gate.C.cell ~config:gate.C.config
    ~load

let timed_power (ctx : Common.t) ~seed ~horizon circuit stats =
  let sim =
    Switchsim.Sim.build ctx.Common.proc ~external_load:ctx.Common.external_load
      circuit
  in
  (Switchsim.Sim.run_timed_stats sim ~rng:(Stoch.Rng.create seed) ~stats
     ~gate_delay:(gate_delay_fn ctx circuit) ~horizon ())
    .Switchsim.Sim.power

let zero_power (ctx : Common.t) ~seed ~horizon circuit stats =
  let sim =
    Switchsim.Sim.build ctx.Common.proc ~external_load:ctx.Common.external_load
      circuit
  in
  (Switchsim.Sim.run_stats sim ~rng:(Stoch.Rng.create seed) ~stats ~horizon ())
    .Switchsim.Sim.power

let run (ctx : Common.t) ?(seed = 42) ?(sim_horizon = 2e-3) ?circuits scenario =
  let circuits =
    match circuits with Some c -> c | None -> Circuits.Suite.all ()
  in
  let rows =
    List.map
      (fun (name, circuit) ->
        let stats =
          Power.Scenario.input_stats
            ~rng:(Stoch.Rng.create (seed + Hashtbl.hash name))
            scenario circuit
        in
        let sim_seed = seed + (5 * Hashtbl.hash name) in
        let zero = zero_power ctx ~seed:sim_seed ~horizon:sim_horizon circuit stats in
        let timed =
          timed_power ctx ~seed:sim_seed ~horizon:sim_horizon circuit stats
        in
        let best, worst =
          O.best_and_worst ctx.Common.power ~delay:ctx.Common.delay
            ~external_load:ctx.Common.external_load circuit ~inputs:stats
        in
        let timed_best =
          timed_power ctx ~seed:sim_seed ~horizon:sim_horizon best.O.circuit stats
        in
        let timed_worst =
          timed_power ctx ~seed:sim_seed ~horizon:sim_horizon worst.O.circuit
            stats
        in
        {
          name;
          zero_power = zero;
          timed_power = timed;
          glitch_percent =
            (if timed <= 0. then 0. else 100. *. (timed -. zero) /. timed);
          timed_reduction_percent =
            O.reduction_percent ~best:timed_best ~worst:timed_worst;
        })
      circuits
  in
  let avg f = Report.Stats.mean (List.map f rows) in
  {
    rows;
    avg_glitch = avg (fun r -> r.glitch_percent);
    avg_timed_reduction = avg (fun r -> r.timed_reduction_percent);
  }

let render t =
  let table =
    Report.Table.create
      ~columns:
        [
          ("circuit", Report.Table.Left);
          ("zero-delay", Report.Table.Right);
          ("timed", Report.Table.Right);
          ("glitch %", Report.Table.Right);
          ("timed best-vs-worst %", Report.Table.Right);
        ]
  in
  List.iter
    (fun r ->
      Report.Table.add_row table
        [
          r.name;
          Report.Table.cell_power r.zero_power;
          Report.Table.cell_power r.timed_power;
          Report.Table.cell_percent r.glitch_percent;
          Report.Table.cell_percent r.timed_reduction_percent;
        ])
    t.rows;
  Report.Table.add_separator table;
  Report.Table.add_row table
    [
      "average";
      "";
      "";
      Report.Table.cell_percent t.avg_glitch;
      Report.Table.cell_percent t.avg_timed_reduction;
    ];
  "E9 — glitch power under inertial delays (extension; the paper's §1\n\
   motivates reordering with exactly these useless transitions)\n"
  ^ Report.Table.render table
