(** E11 — how much does the paper's spatial-independence assumption
    cost? (extension)

    Three estimates of every net's transition density are compared on
    small benchmarks: the paper's gate-local propagation, the exact
    global-BDD computation ({!Power.Exact}), and the switch-level
    simulation as ground truth. The local estimate is exact on
    fan-out-free circuits and biased through reconvergence; the global
    one must agree with the simulator within sampling noise. *)

type row = {
  name : string;
  nets : int;  (** nets with exact density above the noise floor *)
  local_mean_error : float;
      (** mean relative error of the local vs exact density, % *)
  local_worst_error : float;  (** worst single-net error, % *)
  sim_mean_error : float;
      (** mean relative deviation of the simulator vs exact, % — the
          sampling-noise yardstick *)
  max_bdd : int;  (** largest global BDD built *)
}

val row :
  Common.t -> ?seed:int -> ?sim_horizon:float ->
  string * Netlist.Circuit.t -> row

val run :
  Common.t -> ?seed:int -> ?sim_horizon:float ->
  ?circuits:(string * Netlist.Circuit.t) list -> unit -> row list
(** Defaults to a small-PI subset of the suite (global BDDs!). Inputs
    are scenario-B statistics (P = 0.5 is where reconvergence bias
    peaks). *)

val render : row list -> string
