(** E13 — per-gate model validation by exhaustive transition
    enumeration (extension).

    For every configuration of every library gate, the switch-level
    simulator measures the energy of {e all} [4^n] input-vector
    transitions; the average under uniform i.i.d. per-cycle vectors is
    the ground-truth power at [P = 0.5], [D = 0.5/cycle]. Compared
    against the closed-form model, per gate:

    - the mean absolute power error over configurations, and
    - whether the model picks the same best/worst configuration as the
      exhaustive truth — the property the whole optimization rests on. *)

type row = {
  gate : string;
  configurations : int;
  mean_error_percent : float;  (** |model − exhaustive| / exhaustive *)
  best_matches : bool;  (** model argmin = exhaustive argmin *)
  worst_matches : bool;
  rank_correlation : float;
      (** Pearson correlation of per-configuration powers *)
}

val powers : Common.t -> Cell.Gate.t -> float list * float list
(** [(exhaustive, model)] per configuration — exposed for tests and
    debugging. *)

val row : Common.t -> Cell.Gate.t -> row
val run : Common.t -> ?gates:Cell.Gate.t list -> unit -> row list
(** Defaults to the whole library. *)

val render : row list -> string
