(** E10 — process-parameter sensitivity (extension).

    EXPERIMENTS.md notes that the exact Table-1/Table-3 percentages
    depend on the capacitance extraction the paper never published. This
    sweep quantifies that: the junction and wire capacitances (which set
    the internal-vs-output power balance) and the P/N resistance ratio
    are varied around the defaults, and the headline reductions are
    recomputed. The {e qualitative} results — the Table-1 optimum flip
    and positive average reductions — must hold across the sweep (the
    test asserts it), while the magnitudes move, explaining the
    paper-vs-us numeric gaps. *)

type row = {
  label : string;
  proc : Cell.Process.t;
  table1_case1 : float;  (** best-vs-worst %, motivation case 1 *)
  table1_case2 : float;
  table1_flips : bool;
  table3_avg_model : float;  (** model-only Table-3 average, small suite *)
}

val default_variants : unit -> (string * Cell.Process.t) list
(** Baseline plus junction ×0.5/×2, wire ×0.5/×2, balanced and 3:1 P/N
    resistance. *)

val run :
  ?variants:(string * Cell.Process.t) list ->
  ?seed:int ->
  ?circuits:(string * Netlist.Circuit.t) list ->
  unit ->
  row list
(** [circuits] defaults to the fast suite subset. *)

val render : row list -> string
