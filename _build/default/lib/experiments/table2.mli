(** E2 — the paper's Table 2: the gate library with the number of
    distinct transistor reorderings per gate.

    Counts are regenerated three ways and must agree: the closed-form
    product of factorials, the exhaustive enumeration, and the paper's
    pivot algorithm. Layout-instance counts reproduce the paper's
    [\[A,B,...\]] bracket annotations. *)

type row = {
  gate : string;
  arity : int;
  transistors : int;
  configurations : int;  (** the paper's #C column *)
  instances : int;  (** 1 = no bracket annotation *)
  pivot_configurations : int;  (** must equal [configurations] *)
}

type t = row list

val run : unit -> t
val render : t -> string
