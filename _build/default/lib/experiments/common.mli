(** Shared context for the experiment drivers: one process, one power
    model table, one delay table, one external-load convention. *)

type t = {
  proc : Cell.Process.t;
  power : Power.Model.table;
  delay : Delay.Elmore.table;
  external_load : float;
}

val create : ?proc:Cell.Process.t -> ?external_load:float -> unit -> t

val input_names : string array -> int -> string
(** Pin-index to name lookup with ["x<i>"] fallback — used when printing
    gate configurations. *)
