module C = Netlist.Circuit
module S = Stoch.Signal_stats

type row = {
  name : string;
  nets : int;
  local_mean_error : float;
  local_worst_error : float;
  sim_mean_error : float;
  max_bdd : int;
}

let default_circuits () =
  List.map
    (fun n -> (n, Circuits.Suite.find n))
    [
      "c17"; "maj3"; "par4"; "dec2"; "mux4"; "rca4"; "cmpeq4"; "maj5";
      "dec3"; "par9"; "mux8"; "gray8"; "bcd7seg"; "alu1"; "tree16";
    ]

let row (ctx : Common.t) ?(seed = 42) ?(sim_horizon = 8e-3) (name, circuit) =
  let stats _ = S.make ~prob:0.5 ~density:(0.5 /. Power.Scenario.cycle_time) in
  let local = Power.Analysis.run ctx.Common.power circuit ~inputs:stats in
  let exact = Power.Exact.run circuit ~inputs:stats in
  let sim =
    Switchsim.Sim.build ctx.Common.proc ~external_load:ctx.Common.external_load
      circuit
  in
  let result =
    Switchsim.Sim.run_stats sim
      ~rng:(Stoch.Rng.create (seed + Hashtbl.hash name))
      ~stats ~horizon:sim_horizon ()
  in
  (* Compare on gate outputs whose exact density is well above the
     simulator's noise floor. *)
  let floor = 0.05 /. Power.Scenario.cycle_time in
  let entries =
    Array.to_list (C.gates circuit)
    |> List.filter_map (fun (gate : C.gate) ->
           let net = gate.C.output in
           let e = S.density (Power.Exact.stats exact net) in
           if e < floor then None
           else
             let l = S.density (Power.Analysis.stats local net) in
             let s = S.density (Switchsim.Sim.measured_stats result net) in
             Some
               ( 100. *. Float.abs (l -. e) /. e,
                 100. *. Float.abs (s -. e) /. e ))
  in
  let locals = List.map fst entries and sims = List.map snd entries in
  {
    name;
    nets = List.length entries;
    local_mean_error = (if locals = [] then 0. else Report.Stats.mean locals);
    local_worst_error = (if locals = [] then 0. else Report.Stats.maximum locals);
    sim_mean_error = (if sims = [] then 0. else Report.Stats.mean sims);
    max_bdd = Power.Exact.max_bdd_size exact;
  }

let run ctx ?seed ?sim_horizon ?circuits () =
  let circuits =
    match circuits with Some c -> c | None -> default_circuits ()
  in
  List.map (row ctx ?seed ?sim_horizon) circuits

let render rows =
  let table =
    Report.Table.create
      ~columns:
        [
          ("circuit", Report.Table.Left);
          ("nets", Report.Table.Right);
          ("local err %", Report.Table.Right);
          ("worst %", Report.Table.Right);
          ("sim err %", Report.Table.Right);
          ("max BDD", Report.Table.Right);
        ]
  in
  List.iter
    (fun r ->
      Report.Table.add_row table
        [
          r.name;
          string_of_int r.nets;
          Report.Table.cell_percent r.local_mean_error;
          Report.Table.cell_percent r.local_worst_error;
          Report.Table.cell_percent r.sim_mean_error;
          string_of_int r.max_bdd;
        ])
    rows;
  Report.Table.add_separator table;
  let avg f = Report.Stats.mean (List.map f rows) in
  Report.Table.add_row table
    [
      "average";
      "";
      Report.Table.cell_percent (avg (fun r -> r.local_mean_error));
      Report.Table.cell_percent (avg (fun r -> r.local_worst_error));
      Report.Table.cell_percent (avg (fun r -> r.sim_mean_error));
      "";
    ];
  "E11 — density error of the paper's local propagation vs exact global\n\
   BDDs, with the switch-level simulator as the noise yardstick\n\
   (scenario-B inputs; gate outputs above the noise floor)\n"
  ^ Report.Table.render table
