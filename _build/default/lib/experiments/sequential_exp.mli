(** E12 — latch-bounded sequential machines (extension).

    Scenario B says the circuit is the whole clocked system; this
    experiment closes the register loop: steady-state statistics are
    obtained by fixpoint iteration, validated against a cycle-accurate
    simulation, and the combinational core is reordered under them.
    The fixpoint's lag-one independence approximation is exact for
    white state (LFSR) and biased for correlated state (binary
    counters) — both columns are reported. *)

type row = {
  name : string;
  gates : int;
  iterations : int;  (** fixpoint iterations to convergence *)
  converged : bool;
  density_error_percent : float;
      (** mean relative error, fixpoint vs cycle-simulated register
          density (∞-safe: capped at 999) *)
  model_reduction_percent : float;
      (** best-vs-worst of the core under the fixpoint statistics *)
  sim_reduction_percent : float;
      (** same, measured by cycle-accurate switch-level simulation *)
}

val run :
  Common.t -> ?seed:int -> ?cycles:int ->
  ?machines:(string * Sequential.Machine.t) list -> unit -> row list

val render : row list -> string
