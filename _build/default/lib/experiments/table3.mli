(** E4 — the paper's Table 3: best-vs-worst power reduction over the
    benchmark suite, per scenario.

    For each circuit: the optimizer produces the best and the worst
    reordering (model objective); the model reduction is column M; both
    netlists are then measured with the switch-level simulator under one
    common stochastic stimulus to give column S; column D is the
    relative increase in critical-path delay of the best-power netlist
    versus the original library mapping. The paper reports scenario-A
    averages of ≈9 % (M), ≈12 % (S) and ≈+4 % (D), with scenario B
    roughly half of A. *)

type row = {
  name : string;
  gates : int;  (** the paper's G column *)
  model_percent : float;  (** M: best-vs-worst, power model *)
  sim_percent : float;  (** S: best-vs-worst, switch-level simulation *)
  delay_percent : float;  (** D: delay increase of best vs original *)
}

type t = {
  scenario : Power.Scenario.t;
  rows : row list;
  avg_model : float;
  avg_sim : float;
  avg_delay : float;
}

val run :
  Common.t ->
  ?seed:int ->
  ?sim_horizon:float ->
  ?circuits:(string * Netlist.Circuit.t) list ->
  Power.Scenario.t ->
  t
(** [sim_horizon] (default 2 ms) trades simulation noise for run time
    (activity densities are ~10⁵–10⁶ /s, so 2 ms ≈ 10³ transitions per
    input). [circuits] defaults to the full suite. *)

val row : Common.t -> ?seed:int -> ?sim_horizon:float -> Power.Scenario.t -> string * Netlist.Circuit.t -> row
(** One circuit's Table-3 entry. *)

val render : t -> string
