module C = Netlist.Circuit

type point = {
  bit : int;
  operand_density : float;
  carry_density_model : float;
  carry_density_sim : float;
  carry_probability : float;
}

type t = { bits : int; points : point list }

(* The ripple-carry generator builds each stage's carry as
   inv(aoi222(...)); the inverter outputs, in gate order, are the carry
   chain c1..cn. *)
let carry_nets circuit =
  List.filter_map
    (fun g ->
      let gate = C.gate_at circuit g in
      if Cell.Gate.name gate.C.cell <> "inv" then None
      else
        match C.driver circuit gate.C.fanins.(0) with
        | C.Driven_by d
          when Cell.Gate.name (C.gate_at circuit d).C.cell = "aoi222" ->
            Some gate.C.output
        | C.Driven_by _ | C.Primary_input -> None)
    (C.topological_order circuit)

let run (ctx : Common.t) ?(seed = 7) ?(sim_horizon = 4e-3) ~bits () =
  let circuit = Circuits.Generators.ripple_carry_adder bits in
  let operand_density = 0.5 /. Power.Scenario.cycle_time in
  let stats _ = Stoch.Signal_stats.make ~prob:0.5 ~density:operand_density in
  let analysis = Power.Analysis.run ctx.Common.power circuit ~inputs:stats in
  let sim =
    Switchsim.Sim.build ctx.Common.proc ~external_load:ctx.Common.external_load
      circuit
  in
  let result =
    Switchsim.Sim.run_stats sim ~rng:(Stoch.Rng.create seed) ~stats
      ~horizon:sim_horizon ()
  in
  let points =
    List.mapi
      (fun i net ->
        let model = Power.Analysis.stats analysis net in
        let sim_stats = Switchsim.Sim.measured_stats result net in
        {
          bit = i + 1;
          operand_density;
          carry_density_model = Stoch.Signal_stats.density model;
          carry_density_sim = Stoch.Signal_stats.density sim_stats;
          carry_probability = Stoch.Signal_stats.prob model;
        })
      (carry_nets circuit)
  in
  { bits; points }

let render t =
  let table =
    Report.Table.create
      ~columns:
        [
          ("carry bit", Report.Table.Right);
          ("operand D (1/s)", Report.Table.Right);
          ("carry D model", Report.Table.Right);
          ("carry D sim", Report.Table.Right);
          ("carry P", Report.Table.Right);
        ]
  in
  List.iter
    (fun p ->
      Report.Table.add_row table
        [
          string_of_int p.bit;
          Printf.sprintf "%.3g" p.operand_density;
          Printf.sprintf "%.3g" p.carry_density_model;
          Printf.sprintf "%.3g" p.carry_density_sim;
          Report.Table.cell_float ~decimals:3 p.carry_probability;
        ])
    t.points;
  Printf.sprintf
    "E5 — %d-bit ripple-carry adder carry activity (probabilities flat at 0.5,\n\
     densities grow along the carry chain — §1.1 motivation 2)\n%s"
    t.bits
    (Report.Table.render table)
