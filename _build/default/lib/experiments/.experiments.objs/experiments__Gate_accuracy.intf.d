lib/experiments/gate_accuracy.mli: Cell Common
