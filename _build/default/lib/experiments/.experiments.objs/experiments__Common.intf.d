lib/experiments/common.mli: Cell Delay Power
