lib/experiments/ablations.mli: Common Netlist Power
