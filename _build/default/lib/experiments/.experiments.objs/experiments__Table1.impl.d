lib/experiments/table1.ml: Cell Common Float List Power Printf Report Stoch
