lib/experiments/gate_accuracy.ml: Array Cell Common Float Fun Hashtbl List Power Printf Queue Report Sp Stoch
