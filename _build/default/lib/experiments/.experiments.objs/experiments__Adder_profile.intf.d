lib/experiments/adder_profile.mli: Common
