lib/experiments/table2.ml: Cell Char List Report String
