lib/experiments/sequential_exp.mli: Common Sequential
