lib/experiments/common.ml: Array Cell Delay Power
