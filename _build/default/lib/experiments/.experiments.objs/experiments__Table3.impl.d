lib/experiments/table3.ml: Circuits Common Delay Hashtbl List Netlist Power Printf Reorder Report Stoch Switchsim
