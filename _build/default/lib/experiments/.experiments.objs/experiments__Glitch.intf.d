lib/experiments/glitch.mli: Common Netlist Power
