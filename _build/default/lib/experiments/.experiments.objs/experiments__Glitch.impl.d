lib/experiments/glitch.ml: Circuits Common Delay Hashtbl List Netlist Power Reorder Report Stoch Switchsim
