lib/experiments/figure5.ml: Buffer Cell Common List Printf
