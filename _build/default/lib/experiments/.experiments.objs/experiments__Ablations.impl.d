lib/experiments/ablations.ml: Circuits Common Delay Hashtbl List Power Printf Reorder Report Stoch Switchsim
