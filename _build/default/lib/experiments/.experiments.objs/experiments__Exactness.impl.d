lib/experiments/exactness.ml: Array Circuits Common Float Hashtbl List Netlist Power Report Stoch Switchsim
