lib/experiments/sensitivity.ml: Cell Circuits Common Hashtbl List Power Reorder Report Stoch Table1
