lib/experiments/table3.mli: Common Netlist Power
