lib/experiments/figure5.mli:
