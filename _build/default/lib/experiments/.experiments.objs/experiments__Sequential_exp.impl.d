lib/experiments/sequential_exp.ml: Common Float Hashtbl List Netlist Power Reorder Report Sequential Stoch
