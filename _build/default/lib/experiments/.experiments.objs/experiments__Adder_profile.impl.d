lib/experiments/adder_profile.ml: Array Cell Circuits Common List Netlist Power Printf Report Stoch Switchsim
