lib/experiments/exactness.mli: Common Netlist
