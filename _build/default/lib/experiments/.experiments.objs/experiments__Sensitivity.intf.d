lib/experiments/sensitivity.mli: Cell Netlist
