module O = Reorder.Optimizer

type row = {
  label : string;
  proc : Cell.Process.t;
  table1_case1 : float;
  table1_case2 : float;
  table1_flips : bool;
  table3_avg_model : float;
}

let scale ?(c_junction = 1.) ?(c_wire = 1.) ?(r_pmos = 1.) () =
  let d = Cell.Process.default in
  Cell.Process.make ~vdd:d.Cell.Process.vdd
    ~c_gate:d.Cell.Process.c_gate
    ~c_junction:(c_junction *. d.Cell.Process.c_junction)
    ~c_wire:(c_wire *. d.Cell.Process.c_wire)
    ~r_nmos:d.Cell.Process.r_nmos
    ~r_pmos:(r_pmos *. d.Cell.Process.r_pmos)

let default_variants () =
  [
    ("baseline", Cell.Process.default);
    ("junction x0.5", scale ~c_junction:0.5 ());
    ("junction x2", scale ~c_junction:2. ());
    ("wire x0.5", scale ~c_wire:0.5 ());
    ("wire x2", scale ~c_wire:2. ());
    ("rp = rn", scale ~r_pmos:0.5 ());
    ("rp = 3rn", scale ~r_pmos:1.5 ());
  ]

let run ?variants ?(seed = 42) ?circuits () =
  let variants =
    match variants with Some v -> v | None -> default_variants ()
  in
  let circuits =
    match circuits with Some c -> c | None -> Circuits.Suite.small ()
  in
  List.map
    (fun (label, proc) ->
      let ctx = Common.create ~proc () in
      let t1 = Table1.run ctx in
      let reductions =
        List.map
          (fun (name, circuit) ->
            let inputs =
              Power.Scenario.input_stats
                ~rng:(Stoch.Rng.create (seed + Hashtbl.hash name))
                Power.Scenario.A circuit
            in
            let best, worst =
              O.best_and_worst ctx.Common.power ~delay:ctx.Common.delay
                ~external_load:ctx.Common.external_load circuit ~inputs
            in
            O.reduction_percent ~best:best.O.power_after
              ~worst:worst.O.power_after)
          circuits
      in
      {
        label;
        proc;
        table1_case1 = t1.Table1.case1_reduction_percent;
        table1_case2 = t1.Table1.case2_reduction_percent;
        table1_flips = t1.Table1.optimum_flips;
        table3_avg_model = Report.Stats.mean reductions;
      })
    variants

let render rows =
  let table =
    Report.Table.create
      ~columns:
        [
          ("process variant", Report.Table.Left);
          ("T1 case1 %", Report.Table.Right);
          ("T1 case2 %", Report.Table.Right);
          ("optimum flips", Report.Table.Left);
          ("T3 avg M %", Report.Table.Right);
        ]
  in
  List.iter
    (fun r ->
      Report.Table.add_row table
        [
          r.label;
          Report.Table.cell_percent r.table1_case1;
          Report.Table.cell_percent r.table1_case2;
          string_of_bool r.table1_flips;
          Report.Table.cell_percent r.table3_avg_model;
        ])
    rows;
  "E10 — sensitivity of the headline numbers to the capacitance/resistance\n\
   extraction (the paper's exact values are unpublished; see EXPERIMENTS.md)\n"
  ^ Report.Table.render table
