module O = Reorder.Optimizer

type delay_bounded_row = {
  name : string;
  free_percent : float;
  bounded_percent : float;
  free_delay_percent : float;
  bounded_delay_percent : float;
}

type input_reorder_row = {
  name : string;
  full_percent : float;
  input_only_percent : float;
}

type accuracy_point = {
  name : string;
  model_power : float;
  sim_power : float;
}

type accuracy = {
  points : accuracy_point list;
  correlation : float;
  mean_ratio : float;
}

let scenario_stats ~seed scenario name circuit =
  Power.Scenario.input_stats
    ~rng:(Stoch.Rng.create (seed + Hashtbl.hash name))
    scenario circuit

let critical (ctx : Common.t) circuit =
  Delay.Sta.critical_delay
    (Delay.Sta.run ctx.Common.delay ~external_load:ctx.Common.external_load
       circuit)

let delay_bounded (ctx : Common.t) ?(seed = 42) ?circuits scenario =
  let circuits =
    match circuits with Some c -> c | None -> Circuits.Suite.all ()
  in
  List.map
    (fun (name, circuit) ->
      let inputs = scenario_stats ~seed scenario name circuit in
      let optimize objective =
        O.optimize ctx.Common.power ~delay:ctx.Common.delay
          ~external_load:ctx.Common.external_load ~objective circuit ~inputs
      in
      let best = optimize O.Min_power in
      let worst = optimize O.Max_power in
      let bounded = optimize O.Min_power_delay_bounded in
      let d0 = critical ctx circuit in
      let delay_pct r =
        if d0 <= 0. then 0.
        else 100. *. (critical ctx r.O.circuit -. d0) /. d0
      in
      {
        name;
        free_percent =
          O.reduction_percent ~best:best.O.power_after
            ~worst:worst.O.power_after;
        bounded_percent =
          O.reduction_percent ~best:bounded.O.power_after
            ~worst:worst.O.power_after;
        free_delay_percent = delay_pct best;
        bounded_delay_percent = delay_pct bounded;
      })
    circuits

let input_reordering (ctx : Common.t) ?(seed = 42) ?circuits scenario =
  let circuits =
    match circuits with Some c -> c | None -> Circuits.Suite.all ()
  in
  List.map
    (fun (name, circuit) ->
      let inputs = scenario_stats ~seed scenario name circuit in
      let optimize ~input_reordering_only =
        O.optimize ctx.Common.power ~delay:ctx.Common.delay
          ~external_load:ctx.Common.external_load ~input_reordering_only
          circuit ~inputs
      in
      let full = optimize ~input_reordering_only:false in
      let restricted = optimize ~input_reordering_only:true in
      let pct r =
        O.reduction_percent ~best:r.O.power_after ~worst:r.O.power_before
      in
      { name; full_percent = pct full; input_only_percent = pct restricted })
    circuits

let model_accuracy (ctx : Common.t) ?(seed = 42) ?(sim_horizon = 2e-3)
    ?circuits scenario =
  let circuits =
    match circuits with Some c -> c | None -> Circuits.Suite.all ()
  in
  let points =
    List.map
      (fun (name, circuit) ->
        let stats = scenario_stats ~seed scenario name circuit in
        let analysis = Power.Analysis.run ctx.Common.power circuit ~inputs:stats in
        let model_power =
          Power.Estimate.total ctx.Common.power
            ~external_load:ctx.Common.external_load circuit analysis
        in
        let sim =
          Switchsim.Sim.build ctx.Common.proc
            ~external_load:ctx.Common.external_load circuit
        in
        let result =
          Switchsim.Sim.run_stats sim
            ~rng:(Stoch.Rng.create (seed + (3 * Hashtbl.hash name)))
            ~stats ~horizon:sim_horizon ()
        in
        { name; model_power; sim_power = result.Switchsim.Sim.power })
      circuits
  in
  (* Powers span three decades across the suite; correlate in the log
     domain so the statistic is scale-invariant rather than dominated by
     the largest circuits. *)
  let models = List.map (fun p -> log p.model_power) points in
  let sims = List.map (fun p -> log p.sim_power) points in
  {
    points;
    correlation = Report.Stats.correlation models sims;
    mean_ratio =
      Report.Stats.geometric_mean_ratio
        (List.map (fun p -> (p.model_power, p.sim_power)) points);
  }

let render_delay_bounded rows =
  let table =
    Report.Table.create
      ~columns:
        [
          ("circuit", Report.Table.Left);
          ("free %", Report.Table.Right);
          ("bounded %", Report.Table.Right);
          ("free delay %", Report.Table.Right);
          ("bounded delay %", Report.Table.Right);
        ]
  in
  List.iter
    (fun (r : delay_bounded_row) ->
      Report.Table.add_row table
        [
          r.name;
          Report.Table.cell_percent r.free_percent;
          Report.Table.cell_percent r.bounded_percent;
          Report.Table.cell_signed_percent r.free_delay_percent;
          Report.Table.cell_signed_percent r.bounded_delay_percent;
        ])
    rows;
  Report.Table.add_separator table;
  let avg f = Report.Stats.mean (List.map f rows) in
  Report.Table.add_row table
    [
      "average";
      Report.Table.cell_percent (avg (fun r -> r.free_percent));
      Report.Table.cell_percent (avg (fun r -> r.bounded_percent));
      Report.Table.cell_signed_percent (avg (fun r -> r.free_delay_percent));
      Report.Table.cell_signed_percent (avg (fun r -> r.bounded_delay_percent));
    ];
  "E6 — delay-bounded reordering (the paper's §6.b direction)\n"
  ^ Report.Table.render table

let render_input_reordering rows =
  let table =
    Report.Table.create
      ~columns:
        [
          ("circuit", Report.Table.Left);
          ("full %", Report.Table.Right);
          ("input-only %", Report.Table.Right);
        ]
  in
  List.iter
    (fun (r : input_reorder_row) ->
      Report.Table.add_row table
        [
          r.name;
          Report.Table.cell_percent r.full_percent;
          Report.Table.cell_percent r.input_only_percent;
        ])
    rows;
  Report.Table.add_separator table;
  let avg f = Report.Stats.mean (List.map f rows) in
  Report.Table.add_row table
    [
      "average";
      Report.Table.cell_percent (avg (fun r -> r.full_percent));
      Report.Table.cell_percent (avg (fun r -> r.input_only_percent));
    ];
  "E7 — full transistor reordering vs input reordering only (§2),\n\
   reduction of the reference mapping's power\n"
  ^ Report.Table.render table

let render_accuracy a =
  let table =
    Report.Table.create
      ~columns:
        [
          ("circuit", Report.Table.Left);
          ("model", Report.Table.Right);
          ("simulated", Report.Table.Right);
          ("ratio", Report.Table.Right);
        ]
  in
  List.iter
    (fun p ->
      Report.Table.add_row table
        [
          p.name;
          Report.Table.cell_power p.model_power;
          Report.Table.cell_power p.sim_power;
          Report.Table.cell_float ~decimals:2 (p.model_power /. p.sim_power);
        ])
    a.points;
  Printf.sprintf
    "E8 — model vs switch-level power (paper: model overestimates by an offset)\n%s\
     correlation: %.3f   geometric-mean model/sim ratio: %.2f\n"
    (Report.Table.render table)
    a.correlation a.mean_ratio
