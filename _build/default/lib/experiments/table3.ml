module O = Reorder.Optimizer
module C = Netlist.Circuit

type row = {
  name : string;
  gates : int;
  model_percent : float;
  sim_percent : float;
  delay_percent : float;
}

type t = {
  scenario : Power.Scenario.t;
  rows : row list;
  avg_model : float;
  avg_sim : float;
  avg_delay : float;
}

let simulate (ctx : Common.t) ~seed ~horizon circuit stats =
  let sim =
    Switchsim.Sim.build ctx.Common.proc ~external_load:ctx.Common.external_load
      circuit
  in
  (* Same stimulus seed for every configuration of one circuit: the
     comparison is paired, like the paper's common input traces. *)
  let rng = Stoch.Rng.create seed in
  (Switchsim.Sim.run_stats sim ~rng ~stats ~horizon ()).Switchsim.Sim.power

let row (ctx : Common.t) ?(seed = 42) ?(sim_horizon = 2e-3) scenario
    (name, circuit) =
  let stats =
    Power.Scenario.input_stats
      ~rng:(Stoch.Rng.create (seed + Hashtbl.hash name))
      scenario circuit
  in
  let best, worst =
    O.best_and_worst ctx.Common.power ~delay:ctx.Common.delay
      ~external_load:ctx.Common.external_load circuit ~inputs:stats
  in
  let model_percent =
    O.reduction_percent ~best:best.O.power_after ~worst:worst.O.power_after
  in
  let sim_seed = seed + (2 * Hashtbl.hash name) + 1 in
  let p_best = simulate ctx ~seed:sim_seed ~horizon:sim_horizon best.O.circuit stats in
  let p_worst = simulate ctx ~seed:sim_seed ~horizon:sim_horizon worst.O.circuit stats in
  let sim_percent = O.reduction_percent ~best:p_best ~worst:p_worst in
  let delay circuit =
    Delay.Sta.critical_delay
      (Delay.Sta.run ctx.Common.delay ~external_load:ctx.Common.external_load
         circuit)
  in
  let d_orig = delay circuit and d_best = delay best.O.circuit in
  let delay_percent =
    if d_orig <= 0. then 0. else 100. *. (d_best -. d_orig) /. d_orig
  in
  {
    name;
    gates = C.gate_count circuit;
    model_percent;
    sim_percent;
    delay_percent;
  }

let run ctx ?seed ?sim_horizon ?circuits scenario =
  let circuits =
    match circuits with Some c -> c | None -> Circuits.Suite.all ()
  in
  let rows = List.map (row ctx ?seed ?sim_horizon scenario) circuits in
  let avg f = Report.Stats.mean (List.map f rows) in
  {
    scenario;
    rows;
    avg_model = avg (fun r -> r.model_percent);
    avg_sim = avg (fun r -> r.sim_percent);
    avg_delay = avg (fun r -> r.delay_percent);
  }

let render t =
  let table =
    Report.Table.create
      ~columns:
        [
          ("circuit", Report.Table.Left);
          ("G", Report.Table.Right);
          ("M %", Report.Table.Right);
          ("S %", Report.Table.Right);
          ("D %", Report.Table.Right);
        ]
  in
  List.iter
    (fun r ->
      Report.Table.add_row table
        [
          r.name;
          string_of_int r.gates;
          Report.Table.cell_percent r.model_percent;
          Report.Table.cell_percent r.sim_percent;
          Report.Table.cell_signed_percent r.delay_percent;
        ])
    t.rows;
  Report.Table.add_separator table;
  Report.Table.add_row table
    [
      "average";
      "";
      Report.Table.cell_percent t.avg_model;
      Report.Table.cell_percent t.avg_sim;
      Report.Table.cell_signed_percent t.avg_delay;
    ];
  Printf.sprintf
    "Table 3 — scenario %s (paper scenario A: M≈9%%, S≈12%%, D≈+4%%; B ≈ half of A)\n%s"
    (Power.Scenario.name t.scenario)
    (Report.Table.render table)
