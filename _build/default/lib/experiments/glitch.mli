(** E9 — glitch (useless-transition) power, an extension beyond the
    paper's zero-delay evaluation.

    The paper's introduction motivates density-aware optimization with
    the observation that useless signal transitions account for a large
    fraction of dynamic power. The timed simulation mode makes that
    fraction measurable: each gate's output is delayed by its Elmore
    inertial delay, so unequal path delays generate (and short pulses
    absorb) hazards. For every circuit we report the glitch overhead of
    the reference netlist and whether the best-power reordering also
    helps once glitches are accounted for. *)

type row = {
  name : string;
  zero_power : float;  (** W, zero-delay simulation *)
  timed_power : float;  (** W, same stimulus, inertial delays *)
  glitch_percent : float;  (** 100·(timed−zero)/timed *)
  timed_reduction_percent : float;
      (** best-vs-worst reduction measured with the timed simulator *)
}

type t = { rows : row list; avg_glitch : float; avg_timed_reduction : float }

val run :
  Common.t ->
  ?seed:int ->
  ?sim_horizon:float ->
  ?circuits:(string * Netlist.Circuit.t) list ->
  Power.Scenario.t ->
  t

val render : t -> string
