(** E3 — the paper's Fig. 5: execution example of the exhaustive
    exploration algorithm on the gate implementing [y = (a1 + a2)·b].

    The trace lists every configuration in discovery order together with
    the internal node pivoted to reach it; the paper's figure shows the
    same search generating all four configurations of Fig. 1(a). *)

type step = {
  order : int;  (** 0 = the starting configuration *)
  pivoted_node : int option;  (** [None] for the start *)
  description : string;
}

type t = step list

val run : unit -> t
val render : t -> string
