type row = {
  gate : string;
  arity : int;
  transistors : int;
  configurations : int;
  instances : int;
  pivot_configurations : int;
}

type t = row list

let run () =
  List.map
    (fun gate ->
      {
        gate = Cell.Gate.name gate;
        arity = Cell.Gate.arity gate;
        transistors = Cell.Gate.transistor_count gate;
        configurations = Cell.Gate.config_count gate;
        instances = Cell.Gate.instance_count gate;
        pivot_configurations =
          List.length (Cell.Config.pivot_all (Cell.Config.reference gate));
      })
    Cell.Gate.library

let instance_letters n =
  if n <= 1 then ""
  else
    "["
    ^ String.concat ","
        (List.init n (fun i -> String.make 1 (Char.chr (Char.code 'A' + i))))
    ^ "]"

let render t =
  let table =
    Report.Table.create
      ~columns:
        [
          ("gate", Report.Table.Left);
          ("inputs", Report.Table.Right);
          ("transistors", Report.Table.Right);
          ("#C", Report.Table.Right);
          ("instances", Report.Table.Left);
          ("#C (pivot)", Report.Table.Right);
        ]
  in
  List.iter
    (fun r ->
      Report.Table.add_row table
        [
          r.gate ^ instance_letters r.instances;
          string_of_int r.arity;
          string_of_int r.transistors;
          string_of_int r.configurations;
          string_of_int r.instances;
          string_of_int r.pivot_configurations;
        ])
    t;
  "Table 2 — gate library and configuration counts\n"
  ^ Report.Table.render table
