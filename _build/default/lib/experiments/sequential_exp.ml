module M = Sequential.Machine
module O = Reorder.Optimizer
module S = Stoch.Signal_stats
module C = Netlist.Circuit

type row = {
  name : string;
  gates : int;
  iterations : int;
  converged : bool;
  density_error_percent : float;
  model_reduction_percent : float;
  sim_reduction_percent : float;
}

let cycle = Power.Scenario.cycle_time

let free_stats _ = S.make ~prob:0.5 ~density:(0.5 /. cycle)

let rebuild machine circuit =
  let source = M.circuit machine in
  M.create circuit
    ~registers:
      (List.map
         (fun (d, q) -> (C.net_name source d, C.net_name source q))
         (M.registers machine))

let run (ctx : Common.t) ?(seed = 42) ?(cycles = 2048) ?machines () =
  let machines =
    match machines with Some m -> m | None -> Sequential.Machines.all ()
  in
  List.map
    (fun (name, machine) ->
      let fp = M.steady_state ctx.Common.power machine ~inputs:free_stats () in
      let trace =
        M.simulate ctx.Common.proc machine
          ~rng:(Stoch.Rng.create (seed + Hashtbl.hash name))
          ~cycles ~inputs:free_stats ()
      in
      let errors =
        List.filter_map
          (fun (q, measured) ->
            let truth = S.density measured in
            if truth *. cycle < 0.01 then None
            else
              let predicted =
                S.density (Power.Analysis.stats fp.M.analysis q)
              in
              Some
                (Float.min 999. (100. *. Float.abs (predicted -. truth) /. truth)))
          trace.M.register_stats
      in
      (* Optimize the core under the fixpoint statistics. *)
      let stats net = Power.Analysis.stats fp.M.analysis net in
      let optimize objective =
        O.optimize ctx.Common.power ~delay:ctx.Common.delay
          ~external_load:ctx.Common.external_load ~objective
          (M.circuit machine) ~inputs:stats
      in
      let best = optimize O.Min_power in
      let worst = optimize O.Max_power in
      let sim_power report =
        let rebuilt = rebuild machine report.O.circuit in
        (M.simulate ctx.Common.proc rebuilt
           ~rng:(Stoch.Rng.create (seed + Hashtbl.hash name))
           ~cycles ~inputs:free_stats ())
          .M.power
      in
      let p_best = sim_power best and p_worst = sim_power worst in
      {
        name;
        gates = C.gate_count (M.circuit machine);
        iterations = fp.M.iterations;
        converged = fp.M.converged;
        density_error_percent =
          (if errors = [] then 0. else Report.Stats.mean errors);
        model_reduction_percent =
          O.reduction_percent ~best:best.O.power_after
            ~worst:worst.O.power_after;
        sim_reduction_percent = O.reduction_percent ~best:p_best ~worst:p_worst;
      })
    machines

let render rows =
  let table =
    Report.Table.create
      ~columns:
        [
          ("machine", Report.Table.Left);
          ("G", Report.Table.Right);
          ("fixpoint iters", Report.Table.Right);
          ("density err %", Report.Table.Right);
          ("M %", Report.Table.Right);
          ("S %", Report.Table.Right);
        ]
  in
  List.iter
    (fun r ->
      Report.Table.add_row table
        [
          r.name ^ (if r.converged then "" else " (!)");
          string_of_int r.gates;
          string_of_int r.iterations;
          Report.Table.cell_percent r.density_error_percent;
          Report.Table.cell_percent r.model_reduction_percent;
          Report.Table.cell_percent r.sim_reduction_percent;
        ])
    rows;
  "E12 — latch-bounded machines: register-statistics fixpoint vs cycle\n\
   simulation, and best-vs-worst reordering of the sequential core\n\
   (density error is the lag-one approximation's bias: small for white\n\
   LFSR state, large for correlated counter state)\n"
  ^ Report.Table.render table
