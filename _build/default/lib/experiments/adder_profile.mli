(** E5 — the paper's second motivation (§1.1): in a ripple-carry adder
    with identically distributed operand bits, the equilibrium
    probabilities carry no information (all 0.5) but the carry chain's
    transition density grows with bit significance — the signature that
    density-aware reordering exploits.

    For each bit position we report the analytic (Najm) density of the
    carry net and the empirically measured one from the switch-level
    simulator. *)

type point = {
  bit : int;
  operand_density : float;  (** input density at this position (trans/s) *)
  carry_density_model : float;
  carry_density_sim : float;
  carry_probability : float;  (** analytic; stays ≈0.5 across positions *)
}

type t = { bits : int; points : point list }

val run :
  Common.t -> ?seed:int -> ?sim_horizon:float -> bits:int -> unit -> t
(** Operands at [P = 0.5], [D = 0.5] transitions/cycle (scenario-B
    style). *)

val render : t -> string
