type step = {
  order : int;
  pivoted_node : int option;
  description : string;
}

type t = step list

let pin_names = [| "a1"; "a2"; "b" |]

let describe config =
  Cell.Config.to_string ~names:(Common.input_names pin_names) config

let run () =
  let gate = Cell.Gate.of_name "oai21" in
  let start = Cell.Config.reference gate in
  let steps = ref [ { order = 0; pivoted_node = None; description = describe start } ] in
  let count = ref 0 in
  let trace node config =
    incr count;
    steps :=
      { order = !count; pivoted_node = Some node; description = describe config }
      :: !steps
  in
  ignore (Cell.Config.pivot_all ~trace start);
  List.rev !steps

let render t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "Figure 5 — pivot exploration of the gate y=(a1+a2).b\n";
  List.iter
    (fun s ->
      let move =
        match s.pivoted_node with
        | None -> "start           "
        | Some n -> Printf.sprintf "pivot node n%-3d " n
      in
      Buffer.add_string buf
        (Printf.sprintf "  %d: %s %s\n" s.order move s.description))
    t;
  Buffer.add_string buf
    (Printf.sprintf "  -> %d configurations generated (paper: 4)\n"
       (List.length t));
  Buffer.contents buf
