module S = Stoch.Signal_stats

type row = {
  gate : string;
  configurations : int;
  mean_error_percent : float;
  best_matches : bool;
  worst_matches : bool;
  rank_correlation : float;
}

let cycle = Power.Scenario.cycle_time

(* Per-pin toggle probabilities: distinct so that no two configurations
   tie (symmetric pins under equal activity would make best/worst
   comparisons degenerate). Pin i toggles between consecutive cycles
   with probability 0.9 / 2^i; equilibrium probability 0.5. *)
let toggle_probability i = 0.9 /. (2. ** float_of_int i)

let pin_stats n =
  Array.init n (fun i ->
      S.make ~prob:0.5 ~density:(toggle_probability i /. cycle))

(* Exact ground truth under the model's own stochastic semantics.

   Inputs are asynchronous Markov processes (two pins never toggle
   simultaneously); the gate's physical state is the input vector plus
   the charge of every powered node — floating nodes remember their
   charge, so the node state is genuinely history-dependent and a
   single-toggle enumeration from freshly-settled states is *wrong*
   (it was; the Monte-Carlo run exposed it). Instead we build the full
   joint Markov chain over (vector, node charges): at P = 0.5 every
   input i toggles at rate D_i in every state, so the jump chain has
   state-independent transition probabilities D_i/ΣD and its stationary
   distribution equals the CTMC's. The chain is tiny (≤ 2^n · 2^p
   states), we solve it by power iteration and integrate the exact
   per-edge charging energy. *)
let exhaustive_power (ctx : Common.t) gate config =
  let n = Cell.Gate.arity gate in
  let cfg = List.nth (Cell.Config.all gate) config in
  let network = Cell.Config.network cfg in
  let nodes = Sp.Network.power_nodes network in
  let node_index =
    List.mapi (fun i node -> (node, i)) nodes
  in
  let caps =
    List.map
      (fun node ->
        let base = Cell.Process.node_capacitance ctx.Common.proc network node in
        match node with
        | Sp.Network.Output -> base +. ctx.Common.external_load
        | Sp.Network.Vdd | Sp.Network.Vss | Sp.Network.Internal _ -> base)
      nodes
    |> Array.of_list
  in
  let vdd = ctx.Common.proc.Cell.Process.vdd in
  let devices = Sp.Network.devices network in
  (* Settle the node charges for input vector [v], holding the previous
     charges on isolated nodes. Complementary gates have no X states
     once seeded, so charges are a plain bitmask over [nodes]. *)
  let solve v prev =
    let conducting (d : Sp.Network.device) =
      let bit = v land (1 lsl d.input) <> 0 in
      match d.polarity with Sp.Sp_tree.Nmos -> bit | Sp.Sp_tree.Pmos -> not bit
    in
    let reach target =
      let seen = Hashtbl.create 8 in
      let rec go node =
        if not (Hashtbl.mem seen node) then begin
          Hashtbl.add seen node ();
          List.iter
            (fun (d : Sp.Network.device) ->
              if conducting d then begin
                if d.a = node then go d.b;
                if d.b = node then go d.a
              end)
            devices
        end
      in
      go target;
      seen
    in
    let from_vdd = reach Sp.Network.Vdd and from_vss = reach Sp.Network.Vss in
    List.fold_left
      (fun mask (node, i) ->
        let high =
          if Hashtbl.mem from_vdd node then true
          else if Hashtbl.mem from_vss node then false
          else prev land (1 lsl i) <> 0
        in
        if high then mask lor (1 lsl i) else mask)
      0 node_index
  in
  let rising_energy before after =
    List.fold_left
      (fun acc (_, i) ->
        if after land (1 lsl i) <> 0 && before land (1 lsl i) = 0 then
          acc +. (caps.(i) *. vdd *. vdd)
        else acc)
      0. node_index
  in
  (* Enumerate reachable joint states by BFS from every vector settled
     from the all-low charge state. *)
  let rates = Array.init n (fun i -> toggle_probability i /. cycle) in
  let total_rate = Array.fold_left ( +. ) 0. rates in
  let id = Hashtbl.create 64 in
  let states = ref [] in
  let intern key =
    match Hashtbl.find_opt id key with
    | Some i -> Some i
    | None ->
        let i = Hashtbl.length id in
        Hashtbl.add id key i;
        states := key :: !states;
        None
  in
  let queue = Queue.create () in
  for v = 0 to (1 lsl n) - 1 do
    let key = (v, solve v 0) in
    if intern key = None then Queue.add key queue
  done;
  let edges = Hashtbl.create 256 in
  (* (state id, input) -> (successor id, energy) *)
  while not (Queue.is_empty queue) do
    let ((v, m) as key) = Queue.pop queue in
    let s = Hashtbl.find id key in
    for i = 0 to n - 1 do
      let v' = v lxor (1 lsl i) in
      let m' = solve v' m in
      let key' = (v', m') in
      if intern key' = None then Queue.add key' queue;
      Hashtbl.replace edges (s, i)
        (Hashtbl.find id key', rising_energy m m')
    done
  done;
  let n_states = Hashtbl.length id in
  (* Stationary distribution of the jump chain (uniform total rate).
     The chain is periodic — each jump flips one input, so the vector
     parity alternates — hence the lazy (half-self-loop) iteration,
     which shares the stationary distribution but converges. *)
  let pi = Array.make n_states (1. /. float_of_int n_states) in
  let fresh = Array.make n_states 0. in
  for _ = 1 to 800 do
    Array.fill fresh 0 n_states 0.;
    Hashtbl.iter
      (fun (s, i) (s', _) ->
        fresh.(s') <- fresh.(s') +. (0.5 *. pi.(s) *. rates.(i) /. total_rate))
      edges;
    Array.iteri (fun s p -> fresh.(s) <- fresh.(s) +. (0.5 *. p)) pi;
    Array.blit fresh 0 pi 0 n_states
  done;
  (* Power: expected charging energy per unit time. *)
  Hashtbl.fold
    (fun (s, i) (_, energy) acc -> acc +. (pi.(s) *. rates.(i) *. energy))
    edges 0.

let model_power (ctx : Common.t) gate config =
  let input_stats = pin_stats (Cell.Gate.arity gate) in
  (Power.Model.gate_power ctx.Common.power gate ~config ~input_stats
     ~load:ctx.Common.external_load ())
    .Power.Model.total

let argmin xs =
  let best = List.fold_left Float.min infinity xs in
  let rec find i = function
    | [] -> -1
    | x :: rest -> if x = best then i else find (i + 1) rest
  in
  find 0 xs

let argmax xs = argmin (List.map (fun x -> -.x) xs)

let powers ctx gate =
  let configs = List.init (Cell.Gate.config_count gate) Fun.id in
  ( List.map (exhaustive_power ctx gate) configs,
    List.map (model_power ctx gate) configs )

let row ctx gate =
  let count = Cell.Gate.config_count gate in
  let truth, model = powers ctx gate in
  ignore count;
  let count = Cell.Gate.config_count gate in
  let errors =
    List.map2 (fun m t -> 100. *. Float.abs (m -. t) /. t) model truth
  in
  {
    gate = Cell.Gate.name gate;
    configurations = count;
    mean_error_percent = Report.Stats.mean errors;
    best_matches = argmin model = argmin truth;
    worst_matches = argmax model = argmax truth;
    rank_correlation =
      (if count < 2 then 1. else Report.Stats.correlation model truth);
  }

let run ctx ?gates () =
  let gates = match gates with Some g -> g | None -> Cell.Gate.library in
  List.map (row ctx) gates

let render rows =
  let table =
    Report.Table.create
      ~columns:
        [
          ("gate", Report.Table.Left);
          ("#C", Report.Table.Right);
          ("power err %", Report.Table.Right);
          ("best ok", Report.Table.Left);
          ("worst ok", Report.Table.Left);
          ("rank corr", Report.Table.Right);
        ]
  in
  List.iter
    (fun r ->
      Report.Table.add_row table
        [
          r.gate;
          string_of_int r.configurations;
          Report.Table.cell_percent r.mean_error_percent;
          string_of_bool r.best_matches;
          string_of_bool r.worst_matches;
          Report.Table.cell_float ~decimals:3 r.rank_correlation;
        ])
    rows;
  Report.Table.add_separator table;
  let avg = Report.Stats.mean (List.map (fun r -> r.mean_error_percent) rows) in
  let matches = List.length (List.filter (fun r -> r.best_matches) rows) in
  Report.Table.add_row table
    [
      "average / matches";
      "";
      Report.Table.cell_percent avg;
      Printf.sprintf "%d/%d" matches (List.length rows);
      "";
      "";
    ];
  "E13 — per-gate model vs exhaustive switch-level enumeration\n\
   (asynchronous single-toggle events, the model's own regime; 'best\n\
   ok' = the model picks the configuration the exhaustive truth picks)\n"
  ^ Report.Table.render table
