type t = {
  proc : Cell.Process.t;
  power : Power.Model.table;
  delay : Delay.Elmore.table;
  external_load : float;
}

let create ?(proc = Cell.Process.default) ?(external_load = 20e-15) () =
  {
    proc;
    power = Power.Model.table proc;
    delay = Delay.Elmore.table proc;
    external_load;
  }

let input_names names i =
  if i >= 0 && i < Array.length names then names.(i)
  else "x" ^ string_of_int i
