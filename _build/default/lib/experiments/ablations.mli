(** E6/E7/E8 — ablation studies called out in DESIGN.md.

    E6 (delay-bounded): the paper's §6(b) future-work direction — how
    much of the power reduction survives when no gate may become slower
    than its reference configuration?

    E7 (input reordering only): §2 notes input reordering is a strict
    subset of transistor reordering; quantify the gap.

    E8 (model accuracy): the paper observes the model overestimates
    power by a roughly constant offset, making estimated improvements
    (M) smaller than simulated ones (S); we report model-vs-simulated
    power pairs, their correlation, and the mean ratio. *)

type delay_bounded_row = {
  name : string;
  free_percent : float;  (** unconstrained best-vs-worst reduction, model *)
  bounded_percent : float;  (** delay-bounded best-vs-worst reduction *)
  free_delay_percent : float;  (** circuit delay change of the free best *)
  bounded_delay_percent : float;  (** must stay ≈ 0 or negative at gate level *)
}

val delay_bounded :
  Common.t -> ?seed:int -> ?circuits:(string * Netlist.Circuit.t) list ->
  Power.Scenario.t -> delay_bounded_row list

type input_reorder_row = {
  name : string;
  full_percent : float;  (** reduction of reference->best, full exploration *)
  input_only_percent : float;  (** reduction restricted to input permutation *)
}

val input_reordering :
  Common.t -> ?seed:int -> ?circuits:(string * Netlist.Circuit.t) list ->
  Power.Scenario.t -> input_reorder_row list

type accuracy_point = {
  name : string;
  model_power : float;  (** W, reference configuration *)
  sim_power : float;  (** W, same netlist and stimulus *)
}

type accuracy = {
  points : accuracy_point list;
  correlation : float;  (** Pearson correlation of log powers *)
  mean_ratio : float;  (** geometric mean of model/sim *)
}

val model_accuracy :
  Common.t -> ?seed:int -> ?sim_horizon:float ->
  ?circuits:(string * Netlist.Circuit.t) list -> Power.Scenario.t -> accuracy

val render_delay_bounded : delay_bounded_row list -> string
val render_input_reordering : input_reorder_row list -> string
val render_accuracy : accuracy -> string
