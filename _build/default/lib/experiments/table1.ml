type row = {
  config_index : int;
  description : string;
  case1_relative : float;
  case2_relative : float;
}

type t = {
  rows : row list;
  case1_reduction_percent : float;
  case2_reduction_percent : float;
  optimum_flips : bool;
}

let pin_names = [| "a1"; "a2"; "b" |]

let run (ctx : Common.t) =
  let gate = Cell.Gate.of_name "oai21" in
  let configs = Cell.Config.all gate in
  let stats d = Stoch.Signal_stats.make ~prob:0.5 ~density:d in
  let case1 = [| stats 1e4; stats 1e5; stats 1e6 |] in
  let case2 = [| stats 1e6; stats 1e5; stats 1e4 |] in
  let power input_stats config =
    (Power.Model.gate_power ctx.Common.power gate ~config ~input_stats
       ~load:ctx.Common.external_load ())
      .Power.Model.total
  in
  let p1 = List.mapi (fun i _ -> power case1 i) configs in
  let p2 = List.mapi (fun i _ -> power case2 i) configs in
  let reference = List.fold_left Float.max 0. p1 in
  let rows =
    List.mapi
      (fun i config ->
        {
          config_index = i;
          description =
            Cell.Config.to_string ~names:(Common.input_names pin_names) config;
          case1_relative = List.nth p1 i /. reference;
          case2_relative = List.nth p2 i /. reference;
        })
      configs
  in
  let reduction powers =
    let best = List.fold_left Float.min infinity powers in
    let worst = List.fold_left Float.max 0. powers in
    100. *. (worst -. best) /. worst
  in
  let argmin powers =
    let best = List.fold_left Float.min infinity powers in
    let rec find i = function
      | [] -> -1
      | p :: rest -> if p = best then i else find (i + 1) rest
    in
    find 0 powers
  in
  {
    rows;
    case1_reduction_percent = reduction p1;
    case2_reduction_percent = reduction p2;
    optimum_flips = argmin p1 <> argmin p2;
  }

let render t =
  let table =
    Report.Table.create
      ~columns:
        [
          ("config", Report.Table.Left);
          ("ordering", Report.Table.Left);
          ("case 1 (rel)", Report.Table.Right);
          ("case 2 (rel)", Report.Table.Right);
        ]
  in
  List.iter
    (fun r ->
      Report.Table.add_row table
        [
          string_of_int r.config_index;
          r.description;
          Report.Table.cell_float ~decimals:3 r.case1_relative;
          Report.Table.cell_float ~decimals:3 r.case2_relative;
        ])
    t.rows;
  Printf.sprintf
    "Table 1 — motivation example y=(a1+a2).b (paper: 19%% / 17%%, optimum flips)\n%s\
     case 1 best-vs-worst reduction: %.1f%%\n\
     case 2 best-vs-worst reduction: %.1f%%\n\
     optimum flips between cases: %b\n"
    (Report.Table.render table)
    t.case1_reduction_percent t.case2_reduction_percent t.optimum_flips
