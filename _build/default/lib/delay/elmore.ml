module N = Sp.Network

(* A path's delay is affine in the output load: [fixed + coef * load],
   where [coef] is the total path resistance (the output capacitance
   C(y) + load discharges through the whole path) and [fixed] collects
   the internal-node terms plus C(y)'s own contribution. *)
type affine = { fixed : float; coef : float }

type pin_model = { rise : affine list; fall : affine list }

type table = {
  proc : Cell.Process.t;
  cache : (string * int, pin_model array) Hashtbl.t;
}

let table proc = { proc; cache = Hashtbl.create 256 }
let process t = t.proc

(* All simple paths from Output to [rail], as device lists ordered from
   the output toward the rail. *)
let rail_paths network rail =
  let blocked = match rail with N.Vss -> N.Vdd | _ -> N.Vss in
  let adjacency n =
    List.filter_map
      (fun (d : N.device) ->
        if d.a = n then Some (d, d.b)
        else if d.b = n then Some (d, d.a)
        else None)
      (N.devices network)
  in
  let paths = ref [] in
  let rec explore here on_path acc =
    if here = rail then paths := List.rev acc :: !paths
    else if here <> blocked then
      List.iter
        (fun (d, next) ->
          if not (List.mem next on_path) then
            explore next (next :: on_path) (d :: acc))
        (adjacency here)
  in
  explore N.Output [ N.Output ] [];
  !paths

(* Elmore terms for one path when [pin]'s device switches last. *)
let path_affine t network pin path =
  match
    List.exists (fun (d : N.device) -> d.input = pin) path
  with
  | false -> None
  | true ->
      let resistances =
        List.map
          (fun (d : N.device) -> Cell.Process.device_resistance t.proc d.polarity)
          path
      in
      let total_r = List.fold_left ( +. ) 0. resistances in
      (* Nodes along the path, from the output side: node m sits between
         device m and device m+1; its downstream resistance is the sum
         of resistances of devices m+1..k. Only nodes above the pin's
         device still carry charge. *)
      let rec walk devices rs downstream node_entry fixed =
        match (devices, rs) with
        | [], [] -> fixed
        | (d : N.device) :: rest_d, r :: rest_r ->
            if d.input = pin then fixed
            else
              let downstream = downstream -. r in
              let mid =
                (* the node between this device and the next one *)
                let further = if d.a = node_entry then d.b else d.a in
                further
              in
              let fixed =
                match mid with
                | N.Internal _ ->
                    fixed
                    +. (Cell.Process.node_capacitance t.proc network mid
                        *. downstream)
                | N.Vdd | N.Vss | N.Output -> fixed
              in
              walk rest_d rest_r downstream mid fixed
        | _ -> assert false
      in
      let internal_fixed = walk path resistances total_r N.Output 0. in
      let c_out = Cell.Process.node_capacitance t.proc network N.Output in
      Some { fixed = internal_fixed +. (c_out *. total_r); coef = total_r }

let build_models t cell config_index =
  let configs = Cell.Config.all cell in
  let config =
    try List.nth configs config_index
    with Failure _ | Invalid_argument _ ->
      invalid_arg "Delay.Elmore: configuration index out of range"
  in
  let network = Cell.Config.network config in
  let fall_paths = rail_paths network N.Vss in
  let rise_paths = rail_paths network N.Vdd in
  Array.init (Cell.Gate.arity cell) (fun pin ->
      let collect paths =
        List.filter_map (path_affine t network pin) paths
      in
      { rise = collect rise_paths; fall = collect fall_paths })

let get t cell config =
  let key = (Cell.Gate.name cell, config) in
  match Hashtbl.find_opt t.cache key with
  | Some m -> m
  | None ->
      let m = build_models t cell config in
      Hashtbl.add t.cache key m;
      m

let eval load paths =
  List.fold_left (fun acc a -> Float.max acc (a.fixed +. (a.coef *. load))) 0. paths

let pin_delay_rise_fall t cell ~config ~pin ~load =
  if load < 0. then invalid_arg "Delay.Elmore: negative load";
  let models = get t cell config in
  if pin < 0 || pin >= Array.length models then
    invalid_arg "Delay.Elmore: pin out of range";
  let m = models.(pin) in
  (eval load m.rise, eval load m.fall)

let pin_delay t cell ~config ~pin ~load =
  let rise, fall = pin_delay_rise_fall t cell ~config ~pin ~load in
  Float.max rise fall

let worst_delay t cell ~config ~load =
  let arity = Cell.Gate.arity cell in
  let rec go pin acc =
    if pin >= arity then acc
    else go (pin + 1) (Float.max acc (pin_delay t cell ~config ~pin ~load))
  in
  go 0 0.
