lib/delay/sta.ml: Array Cell Elmore List Netlist
