lib/delay/elmore.ml: Array Cell Float Hashtbl List Sp
