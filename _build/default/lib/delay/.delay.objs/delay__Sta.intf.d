lib/delay/sta.mli: Elmore Netlist
