lib/delay/elmore.mli: Cell
