(** Static timing analysis over a circuit (topological longest path).

    Arrival time of a primary input is 0; the arrival of a gate output
    is the max over pins of the fanin arrival plus the pin-to-output
    Elmore delay of the gate's {e current configuration} with its real
    fan-out load. The circuit delay is the max arrival over primary
    outputs — the quantity column D of Table 3 compares before/after
    optimization. *)

type t

val run :
  Elmore.table -> ?external_load:float -> Netlist.Circuit.t -> t
(** [external_load] (default 20 fF) loads every primary output net. *)

val arrival : t -> Netlist.Circuit.net -> float
(** Seconds. *)

val critical_delay : t -> float
(** Max arrival over primary outputs (0 for an input-only circuit). *)

val critical_output : t -> Netlist.Circuit.net option
(** The primary output realizing {!critical_delay}. *)

val critical_path : t -> Netlist.Circuit.net list
(** Nets from a primary input to the critical output, following worst
    arrival predecessors. Empty if there are no primary outputs. *)
