module C = Netlist.Circuit

type t = {
  arrival : float array;  (* per net *)
  worst_fanin : int array;  (* per net: the fanin net realizing it, -1 *)
  outputs : C.net list;
}

let default_external_load = 20e-15

let gate_load table ~external_load circuit g =
  let gate = C.gate_at circuit g in
  let pins =
    List.fold_left
      (fun acc (reader, pin) ->
        let cell = (C.gate_at circuit reader).C.cell in
        let network = Cell.Config.network (Cell.Config.reference cell) in
        acc
        +. Cell.Process.input_pin_capacitance (Elmore.process table) network pin)
      0.
      (C.readers circuit gate.C.output)
  in
  if C.is_primary_output circuit gate.C.output then pins +. external_load
  else pins

let run table ?(external_load = default_external_load) circuit =
  let arrival = Array.make (C.net_count circuit) 0. in
  let worst_fanin = Array.make (C.net_count circuit) (-1) in
  List.iter
    (fun g ->
      let gate = C.gate_at circuit g in
      let load = gate_load table ~external_load circuit g in
      let best = ref 0. and from = ref (-1) in
      Array.iteri
        (fun pin net ->
          let d =
            Elmore.pin_delay table gate.C.cell ~config:gate.C.config ~pin ~load
          in
          let t = arrival.(net) +. d in
          if t > !best then begin
            best := t;
            from := net
          end)
        gate.C.fanins;
      arrival.(gate.C.output) <- !best;
      worst_fanin.(gate.C.output) <- !from)
    (C.topological_order circuit);
  { arrival; worst_fanin; outputs = C.primary_outputs circuit }

let arrival t net = t.arrival.(net)

let critical_output t =
  List.fold_left
    (fun acc net ->
      match acc with
      | None -> Some net
      | Some best -> if t.arrival.(net) > t.arrival.(best) then Some net else acc)
    None t.outputs

let critical_delay t =
  match critical_output t with None -> 0. | Some net -> t.arrival.(net)

let critical_path t =
  match critical_output t with
  | None -> []
  | Some net ->
      let rec back net acc =
        let acc = net :: acc in
        let prev = t.worst_fanin.(net) in
        if prev < 0 then acc else back prev acc
      in
      back net []
