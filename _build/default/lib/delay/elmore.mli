(** Elmore RC delay of a gate configuration, per input pin.

    For a falling output, the pull-down network discharges the output
    through some conducting path; symmetrically for a rising output
    through the pull-up. When pin [i] switches {e last} (the worst case
    static timing uses), the internal nodes between [i]'s transistor and
    the supply rail are already at the rail potential, so only the
    capacitance between the output and that transistor still has to
    move — which is precisely why transistor order affects delay: a
    critical input placed next to the output sees the least capacitance
    (the rule of thumb quoted in §5), while placing it next to the rail
    is what the power optimization tends to prefer.

    For a path [y = n₀ -R₁- n₁ ... -R_k- rail] through pin [i]'s device
    [R_j]: [τ = Σ_{m<j} C(n_m) · Σ_{t=m+1..k} R_t]. The pin delay is the
    maximum over all simple output-to-rail paths through the pin's
    device; it is affine in the output load, and the affine coefficients
    are cached per (cell, configuration, pin). *)

type table

val table : Cell.Process.t -> table
val process : table -> Cell.Process.t

val pin_delay_rise_fall :
  table -> Cell.Gate.t -> config:int -> pin:int -> load:float -> float * float
(** [(rise, fall)] worst-case output transition delays (seconds) when
    [pin] switches last, with [load] Farads on the output beyond the
    gate's own diffusion.
    @raise Invalid_argument on a bad pin, configuration or negative
    load. *)

val pin_delay :
  table -> Cell.Gate.t -> config:int -> pin:int -> load:float -> float
(** [max rise fall]. *)

val worst_delay : table -> Cell.Gate.t -> config:int -> load:float -> float
(** Max over pins — the gate's standalone worst-case delay. *)
