(** Exact signal statistics via global BDDs.

    The paper propagates probabilities and densities gate-locally under
    a spatial-independence assumption (Parker-McCluskey / Najm), which
    biases results through reconvergent fan-out. For small and
    medium circuits we can instead build each net's global function over
    the primary inputs and evaluate

    - [P(net)] exactly, and
    - [D(net) = Σ_pi P(∂net/∂pi)·D(pi)] — Najm's density computed on the
      global function, which is exact for zero-delay semantics under
      independent primary inputs.

    This is deliberately {e not} used by the optimizer (the paper's
    algorithm is the local one); it serves as the reference for the E11
    exactness ablation. *)

type t

exception Blowup of { net : string; nodes : int }
(** Raised when a net's BDD exceeds the node budget. *)

val run :
  ?max_nodes:int ->
  Netlist.Circuit.t ->
  inputs:(Netlist.Circuit.net -> Stoch.Signal_stats.t) ->
  t
(** [max_nodes] (default 200000) bounds each net's BDD size.
    @raise Blowup when exceeded. *)

val stats : t -> Netlist.Circuit.net -> Stoch.Signal_stats.t
val all_stats : t -> Stoch.Signal_stats.t array

val max_bdd_size : t -> int
(** Largest per-net BDD encountered (diagnostics). *)
