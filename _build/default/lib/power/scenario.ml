type t = A | B

let cycle_time = 1e-6
let max_density = 1e6

let name = function A -> "A" | B -> "B"

let of_name = function
  | "A" | "a" -> A
  | "B" | "b" -> B
  | _ -> raise Not_found

let scenario_b_stats =
  Stoch.Signal_stats.make ~prob:0.5 ~density:(0.5 /. cycle_time)

(* Draw every primary input's statistics once, eagerly, so that the
   returned lookup is stable no matter how often or in which order it is
   consulted. *)
let input_stats ~rng scenario circuit =
  let table = Hashtbl.create 16 in
  List.iter
    (fun net ->
      let stats =
        match scenario with
        | A ->
            Stoch.Signal_stats.make
              ~prob:(Stoch.Rng.float rng)
              ~density:(Stoch.Rng.float_range rng 0. max_density)
        | B -> scenario_b_stats
      in
      Hashtbl.add table net stats)
    (Netlist.Circuit.primary_inputs circuit);
  fun net ->
    match Hashtbl.find_opt table net with
    | Some s -> s
    | None -> invalid_arg "Scenario.input_stats: not a primary input net"
