(** The paper's two experimental scenarios (§5.1, Fig. 6).

    Scenario A: the circuit is embedded in a larger system — primary
    input probabilities are drawn uniformly from [\[0,1\]] and transition
    densities uniformly from [\[0, 10⁶\]] transitions/second.

    Scenario B: the circuit is the whole system, latched inputs at a
    fixed frequency — every primary input has probability 0.5 and
    density 0.5 transitions per cycle. We use a 1 µs cycle, i.e.
    5·10⁵ transitions/second, so both scenarios share one time unit. *)

type t = A | B

val cycle_time : float
(** Scenario-B clock period, seconds (1e-6). *)

val max_density : float
(** Scenario-A density upper bound, transitions/second (1e6). *)

val name : t -> string
val of_name : string -> t
(** Accepts ["A"]/["a"]/["B"]/["b"]. @raise Not_found otherwise. *)

val input_stats :
  rng:Stoch.Rng.t ->
  t ->
  Netlist.Circuit.t ->
  Netlist.Circuit.net ->
  Stoch.Signal_stats.t
(** Statistics assigned to each primary input. Scenario A draws from
    [rng] once per net (stable across calls for the same net); scenario
    B ignores [rng]. *)
