lib/power/scenario.mli: Netlist Stoch
