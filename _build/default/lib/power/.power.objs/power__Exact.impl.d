lib/power/exact.ml: Array Bdd Cell Hashtbl List Netlist Stoch
