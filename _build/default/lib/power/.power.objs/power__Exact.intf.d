lib/power/exact.mli: Netlist Stoch
