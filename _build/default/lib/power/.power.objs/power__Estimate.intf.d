lib/power/estimate.mli: Analysis Model Netlist
