lib/power/analysis.mli: Model Netlist Stoch
