lib/power/model.ml: Array Bdd Cell Fun Hashtbl List Printf Sp Stoch String
