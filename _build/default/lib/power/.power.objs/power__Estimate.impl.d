lib/power/estimate.ml: Analysis Array List Model Netlist
