lib/power/analysis.ml: Array List Model Netlist Stoch
