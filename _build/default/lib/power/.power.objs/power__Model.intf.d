lib/power/model.mli: Cell Sp Stoch
