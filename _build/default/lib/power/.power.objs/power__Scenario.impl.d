lib/power/scenario.ml: Hashtbl List Netlist Stoch
