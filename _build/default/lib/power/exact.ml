module C = Netlist.Circuit

type t = {
  per_net : Stoch.Signal_stats.t array;
  max_size : int;
}

exception Blowup of { net : string; nodes : int }

let run ?(max_nodes = 200_000) circuit ~inputs =
  let m = Bdd.manager () in
  let pis = C.primary_inputs circuit in
  let pi_index = Hashtbl.create 16 in
  List.iteri (fun i net -> Hashtbl.add pi_index net i) pis;
  let pi_stats = Array.of_list (List.map inputs pis) in
  let prob i = Stoch.Signal_stats.prob pi_stats.(i) in
  let funcs = Array.make (C.net_count circuit) (Bdd.zero m) in
  List.iter
    (fun net -> funcs.(net) <- Bdd.var m (Hashtbl.find pi_index net))
    pis;
  let max_size = ref 1 in
  (* Substitute fanin functions into each cell function, in topological
     order; the capture-free two-phase composition mirrors
     Netlist.Eval.output_bdds. *)
  let shift = 1_000_000 in
  List.iter
    (fun g ->
      let gate = C.gate_at circuit g in
      let f = Cell.Gate.function_bdd m gate.C.cell in
      let arity = Cell.Gate.arity gate.C.cell in
      let lifted = ref f in
      for pin = 0 to arity - 1 do
        lifted := Bdd.compose !lifted pin (Bdd.var m (shift + pin))
      done;
      let result = ref !lifted in
      for pin = 0 to arity - 1 do
        result := Bdd.compose !result (shift + pin) funcs.(gate.C.fanins.(pin))
      done;
      let size = Bdd.size !result in
      if size > max_nodes then
        raise (Blowup { net = C.net_name circuit gate.C.output; nodes = size });
      if size > !max_size then max_size := size;
      funcs.(gate.C.output) <- !result)
    (C.topological_order circuit);
  let per_net =
    Array.mapi
      (fun net f ->
        ignore net;
        let p = Bdd.probability f prob in
        let density =
          List.fold_left
            (fun acc pi ->
              let d_pi = Stoch.Signal_stats.density pi_stats.(pi) in
              if d_pi <= 0. then acc
              else
                acc +. (d_pi *. Bdd.probability (Bdd.boolean_difference f pi) prob))
            0. (Bdd.support f)
        in
        Stoch.Signal_stats.make ~prob:p ~density)
      funcs
  in
  { per_net; max_size = !max_size }

let stats t net = t.per_net.(net)
let all_stats t = Array.copy t.per_net
let max_bdd_size t = t.max_size
