(** Circuit-level power estimation under the extended gate model.

    The power of the circuit is the sum of the powers of its gates
    (§4.2), each evaluated with its currently selected configuration and
    the fan-out load actually present on its output net. *)

type breakdown = {
  per_gate : float array;  (** W, indexed by gate *)
  internal : float;  (** W on internal nodes, whole circuit *)
  output : float;  (** W on output nodes, whole circuit *)
  total : float;
}

val output_load :
  Model.table -> ?external_load:float -> Netlist.Circuit.t -> int -> float
(** Capacitive load on gate [g]'s output net beyond its own diffusion:
    the gate-input capacitance of every fan-out pin, plus
    [external_load] (default 20 fF) if the net is a primary output. *)

val circuit : Model.table -> ?external_load:float -> Netlist.Circuit.t -> Analysis.t -> breakdown
(** Power of the whole circuit with its current per-gate configurations. *)

val total : Model.table -> ?external_load:float -> Netlist.Circuit.t -> Analysis.t -> float

val gate :
  Model.table ->
  ?external_load:float ->
  Netlist.Circuit.t ->
  Analysis.t ->
  int ->
  config:int ->
  Model.gate_power
(** Power of one gate under a candidate configuration (the quantity
    FIND_BEST_REORDERING minimizes), with the gate's real circuit load. *)
