(** Binary min-heap of timestamped events for the timed simulator.

    Stale entries are handled by the consumer (lazy deletion): each
    payload carries whatever serial number the caller needs to recognize
    superseded events. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** Smallest time first; ties pop in unspecified order. *)

val peek_time : 'a t -> float option
