type 'a entry = { time : float; payload : 'a }

type 'a t = { mutable data : 'a entry array; mutable len : int }

let create () = { data = [||]; len = 0 }

let is_empty h = h.len = 0
let size h = h.len

let grow h filler =
  let capacity = Array.length h.data in
  if h.len >= capacity then begin
    let fresh = max 16 (2 * capacity) in
    let data = Array.make fresh filler in
    Array.blit h.data 0 data 0 h.len;
    h.data <- data
  end

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.data.(i).time < h.data.(parent).time then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < h.len && h.data.(left).time < h.data.(!smallest).time then
    smallest := left;
  if right < h.len && h.data.(right).time < h.data.(!smallest).time then
    smallest := right;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h ~time payload =
  let entry = { time; payload } in
  grow h entry;
  h.data.(h.len) <- entry;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let pop h =
  if h.len = 0 then None
  else begin
    let top = h.data.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.data.(0) <- h.data.(h.len);
      sift_down h 0
    end;
    Some (top.time, top.payload)
  end

let peek_time h = if h.len = 0 then None else Some h.data.(0).time
