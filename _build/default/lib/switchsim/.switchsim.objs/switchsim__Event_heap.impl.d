lib/switchsim/event_heap.ml: Array
