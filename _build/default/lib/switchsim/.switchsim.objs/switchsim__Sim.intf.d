lib/switchsim/sim.mli: Cell Netlist Stoch
