lib/switchsim/event_heap.mli:
