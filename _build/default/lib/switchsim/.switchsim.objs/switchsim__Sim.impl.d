lib/switchsim/sim.ml: Array Cell Event_heap Float Hashtbl List Netlist Sp Stoch
