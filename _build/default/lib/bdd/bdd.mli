(** Reduced ordered binary decision diagrams (ROBDDs).

    A small, self-contained BDD engine sized for gate-level work: the
    functions manipulated are over a gate's handful of inputs or a cone
    of logic. Nodes are hash-consed inside a {!manager}; two functions
    built in the same manager are equivalent iff their roots are
    physically equal ({!equal}).

    Variables are identified by integers; the variable order is the
    natural integer order (smaller index closer to the root). *)

type manager
(** Owns the unique-node table and the operation caches. *)

type t
(** A Boolean function (a node in some manager). Operations mixing nodes
    from different managers are a programming error and raise. *)

val manager : ?cache_size:int -> unit -> manager
(** Fresh manager. [cache_size] is the initial hash table capacity. *)

val node_count : manager -> int
(** Number of live hash-consed nodes (diagnostics). *)

(** {1 Constants and variables} *)

val zero : manager -> t
val one : manager -> t
val var : manager -> int -> t
(** [var m i] is the projection function of variable [i].
    @raise Invalid_argument if [i < 0]. *)

val nvar : manager -> int -> t
(** Complement of {!var}. *)

(** {1 Combinators} *)

val not_ : t -> t
val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t
val xor : t -> t -> t
val xnor : t -> t -> t
val imply : t -> t -> t
val ite : t -> t -> t -> t
(** [ite c t e] is if-then-else. *)

val conj : manager -> t list -> t
(** N-ary conjunction ([one] for the empty list). *)

val disj : manager -> t list -> t
(** N-ary disjunction ([zero] for the empty list). *)

(** {1 Structure} *)

val equal : t -> t -> bool
(** Function equivalence (constant time thanks to hash-consing). *)

val is_zero : t -> bool
val is_one : t -> bool

val top_var : t -> int option
(** Root variable, [None] on constants. *)

val size : t -> int
(** Number of distinct internal nodes reachable from this root. *)

val support : t -> int list
(** Variables the function actually depends on, ascending. *)

(** {1 Cofactors and quantification} *)

val restrict : t -> int -> bool -> t
(** [restrict f i b] is the cofactor f|(xi = b). *)

val compose : t -> int -> t -> t
(** [compose f i g] substitutes function [g] for variable [i] in [f]. *)

val exists : t -> int -> t
(** Existential quantification over one variable. *)

val forall : t -> int -> t

val boolean_difference : t -> int -> t
(** [boolean_difference f i] is [f|xi=1 xor f|xi=0] — the paper's
    [∂f/∂xi]: true on the input vectors where toggling [xi] toggles [f]. *)

(** {1 Evaluation and probability} *)

val eval : t -> (int -> bool) -> bool
(** [eval f env] evaluates under the assignment [env]. *)

val probability : t -> (int -> float) -> float
(** [probability f p] is the exact probability that [f] is true when
    each variable [i] is independently 1 with probability [p i]
    (Parker-McCluskey on the BDD: linear in {!size}).
    @raise Invalid_argument if any [p i] is outside [\[0, 1\]]. *)

val sat_count : t -> nvars:int -> float
(** Number of satisfying assignments over variables [0..nvars-1].
    Requires every support variable to be [< nvars]. *)

val any_sat : t -> (int * bool) list option
(** One satisfying partial assignment (unconstrained variables omitted),
    or [None] for the zero function. *)

(** {1 Iteration and export} *)

val fold_paths :
  t -> init:'a -> f:('a -> (int * bool) list -> 'a) -> 'a
(** Folds [f] over the cubes of a disjoint cover of the on-set (one cube
    per root-to-[one] path). Cubes list (variable, polarity) pairs in
    ascending variable order. *)

val to_string : names:(int -> string) -> t -> string
(** Sum-of-products rendering of the disjoint path cover, e.g.
    ["a.b' + a'.c"]. Constants print as ["0"] / ["1"]. *)
