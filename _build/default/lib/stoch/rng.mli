(** Deterministic pseudo-random number generator (SplitMix64).

    All stochastic experiments in the library draw from this generator so
    that every table and figure is reproducible from a seed. The
    implementation follows Steele, Lea & Flood's SplitMix64; independent
    streams are obtained with {!split}. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val copy : t -> t
(** [copy t] duplicates the state; the copy evolves independently. *)

val split : t -> t
(** [split t] derives a statistically independent generator and advances
    [t]. Use one split stream per primary input so that adding inputs
    does not perturb the streams of existing ones. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val float_range : t -> float -> float -> float
(** [float_range t lo hi] is uniform in [\[lo, hi)]. Requires [lo <= hi]. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val bool : t -> bool
(** Fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential distribution with the
    given mean. Requires [mean > 0]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
