(** Stochastic characterization of a logic signal.

    Following the paper (§3.1), every signal is modeled as a 0-1
    stationary Markov process described by two numbers: the
    {e equilibrium probability} [prob] (probability of observing 1 at any
    instant) and the {e transition density} [density] (average number of
    0→1 plus 1→0 transitions per time unit). *)

type t = private { prob : float; density : float }

val make : prob:float -> density:float -> t
(** [make ~prob ~density] validates and builds the statistics.
    @raise Invalid_argument if [prob] is outside [\[0, 1\]], [density] is
    negative, or either is not finite. *)

val prob : t -> float
val density : t -> float

val constant : bool -> t
(** Statistics of a signal stuck at 0 or 1: density 0. *)

val latched : t
(** Scenario-B primary input: [prob = 0.5], [density = 0.5]
    transitions per cycle (the caller fixes the time unit). *)

val is_constant : t -> bool
(** [true] when the density is exactly 0. *)

val mean_holding_times : t -> float * float
(** [(mu0, mu1)]: mean exponential holding times in states 0 and 1 that
    realize these statistics ([mu0 = 2(1-P)/D], [mu1 = 2P/D]).
    @raise Invalid_argument on a constant signal (no finite holding
    times exist). *)

val equal : ?eps:float -> t -> t -> bool
(** Componentwise comparison with absolute tolerance [eps]
    (default [1e-9]). *)

val pp : Format.formatter -> t -> unit
(** Prints as [P=0.500 D=1.20e+05]. *)
