(** Piecewise-constant 0-1 waveforms over continuous time.

    A waveform starts at time 0 with [initial] value and toggles at each
    strictly increasing transition time. Waveforms are the interface
    between the stochastic input model and the switch-level simulator,
    and the empirical counterpart of {!Signal_stats}. *)

type t

val make : initial:bool -> transitions:float array -> horizon:float -> t
(** [make ~initial ~transitions ~horizon] builds a waveform defined on
    [\[0, horizon\]].
    @raise Invalid_argument if the transition times are not strictly
    increasing, not positive, or exceed [horizon]. *)

val initial : t -> bool
val horizon : t -> float

val transitions : t -> float array
(** Transition instants, strictly increasing. The returned array is
    fresh. *)

val transition_count : t -> int

val value_at : t -> float -> bool
(** [value_at w time] is the signal value at [time] (right-continuous:
    at a transition instant the new value holds). *)

val measure : t -> Signal_stats.t
(** Empirical equilibrium probability (time-weighted fraction at 1) and
    transition density (transitions / horizon).
    @raise Invalid_argument on a zero-length horizon. *)

val constant : bool -> horizon:float -> t

val of_bits : bits:bool array -> period:float -> t
(** Clocked waveform: [bits.(k)] holds during
    [\[k*period, (k+1)*period)]. Only value changes become transitions.
    @raise Invalid_argument if [bits] is empty or [period <= 0]. *)

val generate : Rng.t -> Signal_stats.t -> horizon:float -> t
(** Sample a stationary 0-1 Markov process realizing the given
    statistics (§3.1 of the paper): exponential holding times with means
    [2(1-P)/D] and [2P/D], initial state drawn from the equilibrium
    distribution. Constant statistics yield a constant waveform. *)

val fold_intervals : t -> init:'a -> f:('a -> start:float -> stop:float -> value:bool -> 'a) -> 'a
(** Folds over the maximal constant intervals covering [\[0, horizon\]]. *)
