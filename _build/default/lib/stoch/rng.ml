type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function: add the gamma, then mix with the
   murmur-inspired finalizer (variant 13 of Stafford's mixers). *)
let next_seed t =
  t.state <- Int64.add t.state golden_gamma;
  t.state

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t = mix64 (next_seed t)

let split t = { state = bits64 t }

(* 53 random mantissa bits scaled into [0,1). *)
let float t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1p-53

let float_range t lo hi =
  assert (lo <= hi);
  lo +. ((hi -. lo) *. float t)

let int t n =
  assert (n > 0);
  (* Rejection-free for our purposes: n is always tiny compared to 2^62,
     so modulo bias is negligible; we still mask to a non-negative int. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod n

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let bernoulli t p = float t < p

let exponential t mean =
  assert (mean > 0.);
  (* Inverse CDF; 1 - u avoids log 0. *)
  let u = float t in
  -.mean *. log (1. -. u)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
