type t = { initial : bool; transitions : float array; horizon : float }

let validate ~transitions ~horizon =
  if horizon < 0. then invalid_arg "Waveform.make: negative horizon";
  let n = Array.length transitions in
  for i = 0 to n - 1 do
    let ti = transitions.(i) in
    if ti <= 0. || ti > horizon then
      invalid_arg "Waveform.make: transition outside (0, horizon]";
    if i > 0 && ti <= transitions.(i - 1) then
      invalid_arg "Waveform.make: transitions not strictly increasing"
  done

let make ~initial ~transitions ~horizon =
  validate ~transitions ~horizon;
  { initial; transitions = Array.copy transitions; horizon }

let initial t = t.initial
let horizon t = t.horizon
let transitions t = Array.copy t.transitions
let transition_count t = Array.length t.transitions

(* Number of transitions at instants <= time, by binary search. *)
let count_before t time =
  let a = t.transitions in
  let rec loop lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) <= time then loop (mid + 1) hi else loop lo mid
  in
  loop 0 (Array.length a)

let value_at t time =
  let flips = count_before t time in
  if flips land 1 = 0 then t.initial else not t.initial

let fold_intervals t ~init ~f =
  let n = Array.length t.transitions in
  let rec loop i start value acc =
    let stop = if i < n then t.transitions.(i) else t.horizon in
    let acc = if stop > start then f acc ~start ~stop ~value else acc in
    if i >= n then acc else loop (i + 1) stop (not value) acc
  in
  loop 0 0. t.initial init

let measure t =
  if t.horizon <= 0. then invalid_arg "Waveform.measure: empty horizon";
  let time_at_one =
    fold_intervals t ~init:0. ~f:(fun acc ~start ~stop ~value ->
        if value then acc +. (stop -. start) else acc)
  in
  Signal_stats.make
    ~prob:(time_at_one /. t.horizon)
    ~density:(float_of_int (Array.length t.transitions) /. t.horizon)

let constant value ~horizon = make ~initial:value ~transitions:[||] ~horizon

let of_bits ~bits ~period =
  let n = Array.length bits in
  if n = 0 then invalid_arg "Waveform.of_bits: empty bits";
  if period <= 0. then invalid_arg "Waveform.of_bits: period <= 0";
  let times = ref [] in
  for k = 1 to n - 1 do
    if bits.(k) <> bits.(k - 1) then
      times := (float_of_int k *. period) :: !times
  done;
  make ~initial:bits.(0)
    ~transitions:(Array.of_list (List.rev !times))
    ~horizon:(float_of_int n *. period)

let generate rng stats ~horizon =
  if Signal_stats.is_constant stats then
    constant (Rng.bernoulli rng (Signal_stats.prob stats)) ~horizon
  else begin
    let mu0, mu1 = Signal_stats.mean_holding_times stats in
    if mu0 <= 0. || mu1 <= 0. then
      invalid_arg "Waveform.generate: degenerate statistics (P=0 or 1 with D>0)";
    let initial = Rng.bernoulli rng (Signal_stats.prob stats) in
    let rec walk time value acc =
      let hold = Rng.exponential rng (if value then mu1 else mu0) in
      let time = time +. hold in
      if time >= horizon then List.rev acc
      else walk time (not value) (time :: acc)
    in
    let times = walk 0. initial [] in
    make ~initial ~transitions:(Array.of_list times) ~horizon
  end
