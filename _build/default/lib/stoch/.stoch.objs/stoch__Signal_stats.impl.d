lib/stoch/signal_stats.ml: Float Format
