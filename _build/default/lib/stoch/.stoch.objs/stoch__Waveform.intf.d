lib/stoch/waveform.mli: Rng Signal_stats
