lib/stoch/rng.ml: Array Int64
