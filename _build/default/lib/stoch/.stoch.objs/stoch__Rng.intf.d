lib/stoch/rng.mli:
