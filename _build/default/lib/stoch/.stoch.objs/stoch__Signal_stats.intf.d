lib/stoch/signal_stats.mli: Format
