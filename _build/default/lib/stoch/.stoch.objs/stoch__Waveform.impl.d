lib/stoch/waveform.ml: Array List Rng Signal_stats
