lib/sp/network.ml: Bdd Buffer Format List Printf Sp_tree
