lib/sp/network.mli: Bdd Format Sp_tree
