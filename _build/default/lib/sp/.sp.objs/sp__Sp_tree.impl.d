lib/sp/sp_tree.ml: Bdd Format Hashtbl List Stdlib String
