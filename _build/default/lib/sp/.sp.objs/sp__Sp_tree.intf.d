lib/sp/sp_tree.mli: Bdd Format
