(** Series-parallel transistor networks.

    A static CMOS gate is a pull-up and a pull-down network, each a
    series-parallel composition of transistors. Leaves carry the index of
    the gate input driving the transistor; the device polarity (NMOS /
    PMOS) is a property of the whole network, not of the leaf.

    The {e order} of the children of a [Series] node is electrically
    meaningful — it decides which transistor sits next to the output and
    which next to the supply rail, and therefore which internal nodes
    exist. The order of [Parallel] children is electrically irrelevant.
    A {e transistor reordering} of a gate (the paper's §4.3) is a choice
    of child order for every series node of both networks. *)

type t = private
  | Leaf of int  (** transistor driven by gate input [i] *)
  | Series of t list  (** ≥ 2 children, none itself [Series] *)
  | Parallel of t list  (** ≥ 2 children, none itself [Parallel] *)

type polarity = Nmos | Pmos

(** {1 Construction} *)

val leaf : int -> t
(** @raise Invalid_argument on a negative input index. *)

val series : t list -> t
(** Smart constructor: flattens nested series, returns the child alone
    for a singleton list.
    @raise Invalid_argument on an empty list. *)

val parallel : t list -> t
(** Smart constructor, dual of {!series}. *)

(** {1 Observation} *)

val inputs : t -> int list
(** Distinct input indices, ascending. *)

val transistor_count : t -> int
(** Number of leaves. *)

val internal_node_count : t -> int
(** Number of internal circuit nodes the network creates when laid out
    between two terminal nodes: one per gap between adjacent children of
    each series node, summed recursively. *)

val depth : t -> int
(** Longest series chain (number of stacked transistors) — the
    worst-case resistive path length. *)

val equal : t -> t -> bool
(** Structural equality (order-sensitive everywhere). *)

val canonical : t -> t
(** Canonical representative of the electrical equivalence class:
    parallel children sorted structurally, series order preserved. Two
    configurations are electrically identical iff their canonical forms
    are {!equal}. *)

val compare : t -> t -> int
(** Total structural order (used by {!canonical}). *)

val pp : Format.formatter -> t -> unit
(** Prints e.g. [(b . (a1 | a2))] — [.] series, [|] parallel. *)

val to_string : ?names:(int -> string) -> t -> string

(** {1 Electrical semantics} *)

val dual : t -> t
(** Swap series and parallel everywhere: the pull-up network of a
    complementary gate is the dual of its pull-down network. *)

val conduction : Bdd.manager -> polarity -> t -> Bdd.t
(** Boolean condition under which the network conducts end-to-end: an
    NMOS device conducts when its input is 1, a PMOS device when it is
    0; series = conjunction, parallel = disjunction. *)

val conducts : polarity -> (int -> bool) -> t -> bool
(** Direct evaluation of {!conduction} under an input assignment. *)

(** {1 Reordering exploration} *)

val orderings : t -> t list
(** All electrically distinct transistor reorderings, by exhaustive
    permutation of every series node's children with canonical-form
    deduplication. The input's own configuration is included. *)

val count_orderings : t -> int
(** [List.length (orderings t)], computed without enumeration when all
    leaves are distinct (product of factorials over series nodes);
    falls back to enumeration otherwise. *)

val pivot : t -> int -> t
(** [pivot t k] applies the paper's pivoting step (Fig. 4) on the [k]-th
    internal node (0-based, depth-first order): the two sub-networks
    adjacent to that node along its series chain are exchanged.
    @raise Invalid_argument if [k] is out of range. *)

val pivot_orderings : ?trace:(int -> t -> unit) -> t -> t list
(** All reorderings generated with the paper's recursive pivot-and-search
    algorithm (Fig. 4), starting from [t]. [trace] is called with the
    pivoted internal-node index and each {e newly visited} configuration,
    in discovery order — used to reproduce the paper's Fig. 5. Must
    agree with {!orderings} up to order (tested). *)
