type t = Leaf of int | Series of t list | Parallel of t list

type polarity = Nmos | Pmos

let leaf i =
  if i < 0 then invalid_arg "Sp_tree.leaf: negative input index";
  Leaf i

(* Smart constructors flatten one level of same-constructor nesting so
   that [Series [Series [a;b]; c]] and [Series [a;b;c]] — electrically
   identical — get one representation. *)
let series = function
  | [] -> invalid_arg "Sp_tree.series: empty list"
  | [ c ] -> c
  | cs ->
      let flatten c = match c with Series inner -> inner | Leaf _ | Parallel _ -> [ c ] in
      Series (List.concat_map flatten cs)

let parallel = function
  | [] -> invalid_arg "Sp_tree.parallel: empty list"
  | [ c ] -> c
  | cs ->
      let flatten c = match c with Parallel inner -> inner | Leaf _ | Series _ -> [ c ] in
      Parallel (List.concat_map flatten cs)

let rec inputs_multi = function
  | Leaf i -> [ i ]
  | Series cs | Parallel cs -> List.concat_map inputs_multi cs

let inputs t = List.sort_uniq compare (inputs_multi t)

let rec transistor_count = function
  | Leaf _ -> 1
  | Series cs | Parallel cs ->
      List.fold_left (fun acc c -> acc + transistor_count c) 0 cs

let rec internal_node_count = function
  | Leaf _ -> 0
  | Parallel cs ->
      List.fold_left (fun acc c -> acc + internal_node_count c) 0 cs
  | Series cs ->
      List.fold_left
        (fun acc c -> acc + internal_node_count c)
        (List.length cs - 1)
        cs

let rec depth = function
  | Leaf _ -> 1
  | Series cs -> List.fold_left (fun acc c -> acc + depth c) 0 cs
  | Parallel cs -> List.fold_left (fun acc c -> max acc (depth c)) 0 cs

let rec compare a b =
  match (a, b) with
  | Leaf i, Leaf j -> Stdlib.compare i j
  | Leaf _, (Series _ | Parallel _) -> -1
  | (Series _ | Parallel _), Leaf _ -> 1
  | Series _, Parallel _ -> -1
  | Parallel _, Series _ -> 1
  | Series xs, Series ys | Parallel xs, Parallel ys -> compare_lists xs ys

and compare_lists xs ys =
  match (xs, ys) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs, y :: ys ->
      let c = compare x y in
      if c <> 0 then c else compare_lists xs ys

let equal a b = compare a b = 0

let rec canonical = function
  | Leaf _ as l -> l
  | Series cs -> Series (List.map canonical cs)
  | Parallel cs -> Parallel (List.sort compare (List.map canonical cs))

let rec dual = function
  | Leaf _ as l -> l
  | Series cs -> parallel (List.map dual cs)
  | Parallel cs -> series (List.map dual cs)

let conduction m polarity t =
  let device i = match polarity with Nmos -> Bdd.var m i | Pmos -> Bdd.nvar m i in
  let rec go = function
    | Leaf i -> device i
    | Series cs -> Bdd.conj m (List.map go cs)
    | Parallel cs -> Bdd.disj m (List.map go cs)
  in
  go t

let conducts polarity env t =
  let device i = match polarity with Nmos -> env i | Pmos -> not (env i) in
  let rec go = function
    | Leaf i -> device i
    | Series cs -> List.for_all go cs
    | Parallel cs -> List.exists go cs
  in
  go t

let to_string ?(names = fun i -> "x" ^ string_of_int i) t =
  let rec go = function
    | Leaf i -> names i
    | Series cs -> "(" ^ String.concat " . " (List.map go cs) ^ ")"
    | Parallel cs -> "(" ^ String.concat " | " (List.map go cs) ^ ")"
  in
  go t

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* --- reordering enumeration --- *)

let rec permutations = function
  | [] -> [ [] ]
  | xs ->
      List.concat_map
        (fun x ->
          let rest = ref [] and seen = ref false in
          List.iter
            (fun y ->
              if (not !seen) && y == x then seen := true else rest := y :: !rest)
            xs;
          List.map (fun p -> x :: p) (permutations (List.rev !rest)))
        xs

let cartesian lists =
  List.fold_right
    (fun choices acc ->
      List.concat_map (fun c -> List.map (fun rest -> c :: rest) acc) choices)
    lists [ [] ]

let dedup_by_canonical configs =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun c ->
      let key = canonical c in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    configs

let orderings t =
  let rec variants = function
    | Leaf _ as l -> [ l ]
    | Parallel cs -> List.map parallel (cartesian (List.map variants cs))
    | Series cs ->
        let per_child = List.map variants cs in
        List.concat_map
          (fun perm -> List.map series (cartesian perm))
          (permutations per_child)
  in
  dedup_by_canonical (variants t)

let rec factorial n = if n <= 1 then 1 else n * factorial (n - 1)

let count_orderings t =
  let multi = inputs_multi t in
  let distinct = List.length (List.sort_uniq Stdlib.compare multi) = List.length multi in
  if not distinct then List.length (orderings t)
  else
    let rec count = function
      | Leaf _ -> 1
      | Parallel cs -> List.fold_left (fun acc c -> acc * count c) 1 cs
      | Series cs ->
          List.fold_left
            (fun acc c -> acc * count c)
            (factorial (List.length cs))
            cs
    in
    count t

(* --- the paper's pivot algorithm (Fig. 4) --- *)

let swap_adjacent cs k =
  let rec go i = function
    | a :: b :: rest when i = k -> b :: a :: rest
    | a :: rest -> a :: go (i + 1) rest
    | [] -> invalid_arg "Sp_tree.pivot: internal node index out of range"
  in
  go 0 cs

let pivot t k =
  if k < 0 || k >= internal_node_count t then
    invalid_arg "Sp_tree.pivot: internal node index out of range";
  let counter = ref 0 in
  let rec go t =
    match t with
    | Leaf _ -> t
    | Parallel cs -> parallel (List.map go cs)
    | Series cs ->
        let gaps = List.length cs - 1 in
        let base = !counter in
        counter := base + gaps;
        let cs = List.map go cs in
        if k >= base && k < base + gaps then series (swap_adjacent cs (k - base))
        else series cs
  in
  go t

let pivot_orderings ?(trace = fun _ _ -> ()) t =
  let n = internal_node_count t in
  let visited = Hashtbl.create 16 in
  let found = ref [ t ] in
  Hashtbl.add visited (canonical t) ();
  (* PIVOTE_AND_SEARCH: pivot on [current], record if new, then recurse on
     every internal node except the one just used (re-pivoting it would
     undo the move and lead back to an already-visited configuration). *)
  let rec search cfg current =
    let cfg = pivot cfg current in
    let key = canonical cfg in
    if not (Hashtbl.mem visited key) then begin
      Hashtbl.add visited key ();
      found := cfg :: !found;
      trace current cfg;
      for idx = 0 to n - 1 do
        if idx <> current then search cfg idx
      done
    end
  in
  for idx = 0 to n - 1 do
    search t idx
  done;
  List.rev !found
