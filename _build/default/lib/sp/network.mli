(** Flattened transistor-level graph of a static CMOS gate — the paper's
    Fig. 2(a) representation.

    The graph has one vertex per circuit node — [Vdd], [Vss], the gate
    [Output] and the internal nodes created by series chains — and one
    edge per transistor. This representation retains the transistor
    order information of a configuration, and supports the paper's
    H/G path-function extraction (Fig. 2(b)). *)

type node = Vdd | Vss | Output | Internal of int

type device = {
  input : int;  (** gate input index driving the transistor *)
  polarity : Sp_tree.polarity;
  a : node;
  b : node;  (** the two source/drain terminals (electrically symmetric) *)
}

type t

val of_networks : pull_up:Sp_tree.t -> pull_down:Sp_tree.t -> t
(** Lays [pull_up] (PMOS devices) between [Vdd] and [Output] and
    [pull_down] (NMOS devices) between [Output] and [Vss]. Pull-down
    internal nodes are numbered first, then pull-up ones, each network
    left-to-right / supply-to-output in depth-first order. *)

val complementary_gate : pull_down:Sp_tree.t -> t
(** [of_networks ~pull_up:(Sp_tree.dual pull_down) ~pull_down]: the
    standard fully-complementary static CMOS realization. *)

val devices : t -> device list
val device_count : t -> int

val internal_count : t -> int
(** Number of internal nodes (the paper's [p]). *)

val internal_nodes : t -> node list
(** [Internal 0 .. Internal (p-1)]. *)

val power_nodes : t -> node list
(** The nodes whose charging consumes power: all internal nodes plus the
    output node. *)

val inputs : t -> int list
(** Distinct gate input indices, ascending. *)

val node_degree : t -> node -> int
(** Number of transistor source/drain terminals attached to the node —
    drives the junction-capacitance model. *)

val h_function : Bdd.manager -> t -> node -> Bdd.t
(** [h_function m t n] is the paper's [H_n]: the Boolean condition (over
    gate inputs) that at least one conducting path links [n] to [Vdd].
    Paths may cross the output node but not the opposite rail.
    @raise Invalid_argument when [n] is [Vdd] or [Vss]. *)

val g_function : Bdd.manager -> t -> node -> Bdd.t
(** [G_n]: conducting paths from [n] to [Vss]. *)

val output_function : Bdd.manager -> t -> Bdd.t
(** The logic function computed at the output ([H_Output]). *)

val is_complementary : Bdd.manager -> t -> bool
(** [H_Output = not G_Output]: the output is always driven, never
    shorted. *)

val has_short : Bdd.manager -> t -> bool
(** [true] iff some node can be connected to both rails at once
    ([H_n ∧ G_n] satisfiable) — never the case for a well-formed
    complementary gate. *)

val pp_node : Format.formatter -> node -> unit
val pp : Format.formatter -> t -> unit

val to_dot : ?name:string -> ?input_names:(int -> string) -> t -> string
(** Graphviz rendering of the transistor graph: circuit nodes as
    vertices, transistors as labeled edges (PMOS dashed), the rails
    highlighted — the Fig. 2(a) picture. *)
