type node = Vdd | Vss | Output | Internal of int

type device = {
  input : int;
  polarity : Sp_tree.polarity;
  a : node;
  b : node;
}

type t = {
  devices : device list;
  internal_count : int;
  inputs : int list;
}

(* Lay an SP tree between terminals [u] and [v], allocating internal
   nodes for series gaps via [fresh]. *)
let rec lay ~polarity ~fresh u v tree acc =
  match (tree : Sp_tree.t) with
  | Leaf input -> { input; polarity; a = u; b = v } :: acc
  | Parallel cs -> List.fold_left (fun acc c -> lay ~polarity ~fresh u v c acc) acc cs
  | Series cs ->
      let rec chain u cs acc =
        match cs with
        | [] -> acc
        | [ last ] -> lay ~polarity ~fresh u v last acc
        | c :: rest ->
            let mid = Internal (fresh ()) in
            chain mid rest (lay ~polarity ~fresh u mid c acc)
      in
      chain u cs acc

let of_networks ~pull_up ~pull_down =
  let counter = ref 0 in
  let fresh () =
    let i = !counter in
    incr counter;
    i
  in
  let acc = lay ~polarity:Sp_tree.Nmos ~fresh Output Vss pull_down [] in
  let acc = lay ~polarity:Sp_tree.Pmos ~fresh Vdd Output pull_up acc in
  let inputs =
    List.sort_uniq compare
      (List.sort_uniq compare (Sp_tree.inputs pull_up @ Sp_tree.inputs pull_down))
  in
  { devices = List.rev acc; internal_count = !counter; inputs }

let complementary_gate ~pull_down =
  of_networks ~pull_up:(Sp_tree.dual pull_down) ~pull_down

let devices t = t.devices
let device_count t = List.length t.devices
let internal_count t = t.internal_count
let internal_nodes t = List.init t.internal_count (fun i -> Internal i)
let power_nodes t = Output :: internal_nodes t
let inputs t = t.inputs

let node_degree t n =
  List.fold_left
    (fun acc d ->
      let acc = if d.a = n then acc + 1 else acc in
      if d.b = n then acc + 1 else acc)
    0 t.devices

(* Conduction literal of one transistor: NMOS passes when its input is
   1, PMOS when it is 0. *)
let device_literal m d =
  match d.polarity with
  | Sp_tree.Nmos -> Bdd.var m d.input
  | Sp_tree.Pmos -> Bdd.nvar m d.input

(* Disjunction over all simple paths from [source] to [target] of the
   conjunction of the traversed devices' conduction conditions — the
   paper's Fig. 2(b) depth-first search, with the opposite rail
   [blocked] (a supply rail terminates a path, it is not a via). *)
let path_function m t ~source ~target ~blocked =
  if source = Vdd || source = Vss then
    invalid_arg "Network: H/G undefined on supply rails";
  let adjacency n =
    List.filter_map
      (fun d ->
        if d.a = n then Some (d, d.b)
        else if d.b = n then Some (d, d.a)
        else None)
      t.devices
  in
  let rec explore here on_path cube =
    if here = target then cube
    else if here = blocked then Bdd.zero m
    else
      List.fold_left
        (fun acc (d, next) ->
          if List.mem next on_path then acc
          else
            let cube = Bdd.( &&& ) cube (device_literal m d) in
            if Bdd.is_zero cube then acc
            else Bdd.( ||| ) acc (explore next (next :: on_path) cube))
        (Bdd.zero m) (adjacency here)
  in
  explore source [ source ] (Bdd.one m)

let h_function m t n = path_function m t ~source:n ~target:Vdd ~blocked:Vss
let g_function m t n = path_function m t ~source:n ~target:Vss ~blocked:Vdd

let output_function m t = h_function m t Output

let is_complementary m t =
  Bdd.equal (h_function m t Output) (Bdd.not_ (g_function m t Output))

let has_short m t =
  List.exists
    (fun n -> not (Bdd.is_zero (Bdd.( &&& ) (h_function m t n) (g_function m t n))))
    (power_nodes t)

let pp_node ppf = function
  | Vdd -> Format.pp_print_string ppf "vdd"
  | Vss -> Format.pp_print_string ppf "vss"
  | Output -> Format.pp_print_string ppf "y"
  | Internal i -> Format.fprintf ppf "n%d" i

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun d ->
      Format.fprintf ppf "%s x%d : %a - %a@,"
        (match d.polarity with Sp_tree.Nmos -> "nmos" | Sp_tree.Pmos -> "pmos")
        d.input pp_node d.a pp_node d.b)
    t.devices;
  Format.fprintf ppf "@]"

let node_id = function
  | Vdd -> "vdd"
  | Vss -> "vss"
  | Output -> "y"
  | Internal i -> "n" ^ string_of_int i

let to_dot ?(name = "gate") ?(input_names = fun i -> "x" ^ string_of_int i) t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "graph %S {\n" name);
  Buffer.add_string buf "  rankdir=TB;\n";
  Buffer.add_string buf
    "  vdd [shape=box, style=filled, fillcolor=lightblue];\n";
  Buffer.add_string buf
    "  vss [shape=box, style=filled, fillcolor=lightgray];\n";
  Buffer.add_string buf "  y [shape=doublecircle];\n";
  List.iter
    (fun node ->
      match node with
      | Internal _ ->
          Buffer.add_string buf
            (Printf.sprintf "  %s [shape=circle];\n" (node_id node))
      | Vdd | Vss | Output -> ())
    (power_nodes t);
  List.iter
    (fun d ->
      let style =
        match d.polarity with
        | Sp_tree.Pmos -> ", style=dashed"
        | Sp_tree.Nmos -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s -- %s [label=%S%s];\n" (node_id d.a)
           (node_id d.b) (input_names d.input) style))
    t.devices;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
