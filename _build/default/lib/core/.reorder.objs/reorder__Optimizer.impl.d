lib/core/optimizer.ml: Array Cell Delay Float Format List Netlist Option Power
