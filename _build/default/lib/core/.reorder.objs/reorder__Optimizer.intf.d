lib/core/optimizer.mli: Delay Format Netlist Power Stoch
